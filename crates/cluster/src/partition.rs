//! Equivalence-set partition refinement.
//!
//! Given the equivalence sets referenced by a batch of pending jobs, compute
//! the coarsest partition of the cluster such that every referenced set is
//! an exact union of partition classes. The STRL compiler then creates one
//! integer "partition variable" per class per time slice instead of
//! per-node variables — the paper's most important MILP-size optimization
//! (Sec. 7.3, "dynamically partitioning cluster resources at the beginning
//! of each cycle to minimize the number of partition variables").

use crate::nodeset::NodeSet;

/// A partition of the node universe into disjoint classes.
#[derive(Debug, Clone)]
pub struct PartitionSet {
    classes: Vec<NodeSet>,
}

impl PartitionSet {
    /// Refines the universe against the given equivalence sets.
    ///
    /// Starts from the single class of all nodes and repeatedly splits
    /// classes at each set's boundary. Classes that end up empty are
    /// dropped. The result is the coarsest partition in which every input
    /// set is a union of classes.
    pub fn refine(universe: usize, sets: &[NodeSet]) -> PartitionSet {
        let mut classes = vec![NodeSet::full(universe)];
        for s in sets {
            let mut next = Vec::with_capacity(classes.len() + 1);
            for c in classes {
                let inside = c.and(s);
                let outside = c.minus(s);
                if !inside.is_empty() {
                    next.push(inside);
                }
                if !outside.is_empty() {
                    next.push(outside);
                }
            }
            classes = next;
        }
        PartitionSet { classes }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the partition has no classes (empty universe).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The classes, each a disjoint node set.
    pub fn classes(&self) -> &[NodeSet] {
        &self.classes
    }

    /// One class by index.
    // srclint: checked-indexing: class indices are produced by this set's
    // own covering()/classes() and stay in range for its lifetime.
    pub fn class(&self, ix: usize) -> &NodeSet {
        &self.classes[ix]
    }

    /// Indices of the classes whose union is exactly `set`.
    ///
    /// Every class is either contained in `set` or disjoint from it as long
    /// as `set` was among (or is a union of) the sets used for refinement;
    /// classes partially overlapping are reported via `Err` with the
    /// offending class index.
    pub fn cover(&self, set: &NodeSet) -> Result<Vec<usize>, usize> {
        let mut out = Vec::new();
        for (i, c) in self.classes.iter().enumerate() {
            if c.is_subset(set) {
                out.push(i);
            } else if !c.is_disjoint(set) {
                return Err(i);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn set(cap: usize, ids: &[u32]) -> NodeSet {
        NodeSet::from_ids(cap, ids.iter().map(|&i| NodeId(i)))
    }

    #[test]
    fn no_sets_gives_single_class() {
        let p = PartitionSet::refine(8, &[]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.class(0).len(), 8);
    }

    #[test]
    fn single_set_splits_in_two() {
        let gpus = set(8, &[0, 1, 2]);
        let p = PartitionSet::refine(8, std::slice::from_ref(&gpus));
        assert_eq!(p.len(), 2);
        let cover = p.cover(&gpus).unwrap();
        assert_eq!(cover.len(), 1);
        assert_eq!(p.class(cover[0]), &gpus);
    }

    #[test]
    fn overlapping_sets_refine_to_atoms() {
        // {0,1,2,3} and {2,3,4,5} over 8 nodes -> classes
        // {0,1}, {2,3}, {4,5}, {6,7}.
        let a = set(8, &[0, 1, 2, 3]);
        let b = set(8, &[2, 3, 4, 5]);
        let p = PartitionSet::refine(8, &[a.clone(), b.clone()]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.cover(&a).unwrap().len(), 2);
        assert_eq!(p.cover(&b).unwrap().len(), 2);
    }

    #[test]
    fn identical_sets_do_not_oversplit() {
        let a = set(8, &[0, 1]);
        let p = PartitionSet::refine(8, &[a.clone(), a.clone(), a.clone()]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn cover_detects_non_aligned_set() {
        let a = set(8, &[0, 1, 2, 3]);
        let p = PartitionSet::refine(8, &[a]);
        // {3, 4} straddles the class boundary.
        assert!(p.cover(&set(8, &[3, 4])).is_err());
    }

    #[test]
    fn classes_are_disjoint_and_exhaustive() {
        let sets = [
            set(16, &[0, 1, 2, 3, 4]),
            set(16, &[4, 5, 6]),
            set(16, &[10, 11, 12, 13]),
            set(16, &[0, 15]),
        ];
        let p = PartitionSet::refine(16, &sets);
        let mut seen = NodeSet::empty(16);
        for c in p.classes() {
            assert!(!c.is_empty());
            assert!(seen.is_disjoint(c));
            seen = seen.or(c);
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn full_set_is_union_of_all_classes() {
        let sets = [set(8, &[1, 2]), set(8, &[5])];
        let p = PartitionSet::refine(8, &sets);
        let cover = p.cover(&NodeSet::full(8)).unwrap();
        assert_eq!(cover.len(), p.len());
    }
}
