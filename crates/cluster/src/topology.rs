//! Cluster topology: construction and queries.

use crate::node::{Attr, Node, NodeId, RackId};
use crate::nodeset::NodeSet;

/// An immutable cluster description: nodes grouped into racks, each node
/// carrying static attributes.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    racks: Vec<NodeSet>,
}

impl Cluster {
    /// Starts building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// The paper's RC256 testbed: 256 slaves in 8 equal racks. `gpu_racks`
    /// racks (from the front) are GPU-labeled, mirroring the paper's
    /// GPU-enabled-rack heterogeneity.
    pub fn rc256(gpu_racks: usize) -> Cluster {
        Self::uniform(8, 32, gpu_racks)
    }

    /// The paper's RC80 testbed: an 80-node subset of RC256, similarly
    /// configured (8 racks of 10 here, preserving the rack count).
    pub fn rc80(gpu_racks: usize) -> Cluster {
        Self::uniform(8, 10, gpu_racks)
    }

    /// The 4-node toy cluster of Fig. 1: 2 racks of 2 nodes, rack 0
    /// GPU-enabled.
    pub fn fig1_toy() -> Cluster {
        Self::uniform(2, 2, 1)
    }

    /// The 3-machine single-rack cluster of the Sec. 5.1 MILP example.
    pub fn three_machines() -> Cluster {
        Self::uniform(1, 3, 0)
    }

    /// A uniform cluster of `racks` racks with `nodes_per_rack` nodes; the
    /// first `gpu_racks` racks carry the `gpu` attribute.
    pub fn uniform(racks: usize, nodes_per_rack: usize, gpu_racks: usize) -> Cluster {
        let mut b = Cluster::builder();
        for r in 0..racks {
            let attrs = if r < gpu_racks {
                vec![Attr::gpu()]
            } else {
                Vec::new()
            };
            b.add_rack(nodes_per_rack, attrs);
        }
        b.build()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.racks.len()
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A single node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The rack a node belongs to.
    pub fn rack_of(&self, id: NodeId) -> RackId {
        self.nodes[id.index()].rack
    }

    /// The set of nodes in a rack.
    // srclint: checked-indexing: RackIds are minted by this cluster's
    // builder and always index the racks vector.
    pub fn rack_nodes(&self, rack: RackId) -> &NodeSet {
        &self.racks[rack.index()]
    }

    /// The full node set.
    pub fn all_nodes(&self) -> NodeSet {
        NodeSet::full(self.num_nodes())
    }

    /// The set of nodes carrying an attribute.
    pub fn nodes_with_attr(&self, attr: &Attr) -> NodeSet {
        NodeSet::from_ids(
            self.num_nodes(),
            self.nodes.iter().filter(|n| n.has_attr(attr)).map(|n| n.id),
        )
    }

    /// An empty node set sized to this cluster.
    pub fn empty_set(&self) -> NodeSet {
        NodeSet::empty(self.num_nodes())
    }
}

/// Incremental cluster construction.
#[derive(Debug, Default)]
pub struct ClusterBuilder {
    nodes: Vec<Node>,
    rack_sizes: Vec<usize>,
}

impl ClusterBuilder {
    /// Adds a rack of `n` nodes, each carrying `attrs`.
    pub fn add_rack(&mut self, n: usize, attrs: Vec<Attr>) -> RackId {
        let rack = RackId(self.rack_sizes.len() as u32);
        for _ in 0..n {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(Node {
                id,
                rack,
                attrs: attrs.clone(),
            });
        }
        self.rack_sizes.push(n);
        rack
    }

    /// Adds a single node with its own attributes to the most recent rack.
    ///
    /// # Panics
    ///
    /// Panics if no rack exists yet.
    pub fn add_node(&mut self, attrs: Vec<Attr>) -> NodeId {
        let rack = RackId((self.rack_sizes.len() - 1) as u32);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { id, rack, attrs });
        *self.rack_sizes.last_mut().expect("add_rack first") += 1;
        id
    }

    /// Finalizes the cluster.
    pub fn build(self) -> Cluster {
        let n = self.nodes.len();
        let mut racks = vec![NodeSet::empty(n); self.rack_sizes.len()];
        for node in &self.nodes {
            racks[node.rack.index()].insert(node.id);
        }
        Cluster {
            nodes: self.nodes,
            racks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc256_shape() {
        let c = Cluster::rc256(2);
        assert_eq!(c.num_nodes(), 256);
        assert_eq!(c.num_racks(), 8);
        assert_eq!(c.rack_nodes(RackId(0)).len(), 32);
        assert_eq!(c.nodes_with_attr(&Attr::gpu()).len(), 64);
    }

    #[test]
    fn rc80_shape() {
        let c = Cluster::rc80(2);
        assert_eq!(c.num_nodes(), 80);
        assert_eq!(c.num_racks(), 8);
        assert_eq!(c.nodes_with_attr(&Attr::gpu()).len(), 20);
    }

    #[test]
    fn fig1_topology_matches_paper() {
        // 2 racks x 2 servers, rack 1 (our rack 0) GPU-enabled.
        let c = Cluster::fig1_toy();
        assert_eq!(c.num_nodes(), 4);
        let gpus = c.nodes_with_attr(&Attr::gpu());
        assert_eq!(gpus.len(), 2);
        assert!(gpus.contains(NodeId(0)) && gpus.contains(NodeId(1)));
        assert_eq!(c.rack_of(NodeId(0)), c.rack_of(NodeId(1)));
        assert_ne!(c.rack_of(NodeId(0)), c.rack_of(NodeId(2)));
    }

    #[test]
    fn rack_membership_is_partition() {
        let c = Cluster::rc80(1);
        let mut seen = c.empty_set();
        for r in 0..c.num_racks() {
            let rack = c.rack_nodes(RackId(r as u32));
            assert!(seen.is_disjoint(rack));
            seen = seen.or(rack);
        }
        assert_eq!(seen.len(), c.num_nodes());
    }

    #[test]
    fn builder_mixed_racks() {
        let mut b = Cluster::builder();
        b.add_rack(2, vec![Attr::new("ssd")]);
        b.add_rack(3, vec![]);
        b.add_node(vec![Attr::gpu()]);
        let c = b.build();
        assert_eq!(c.num_nodes(), 6);
        assert_eq!(c.rack_nodes(RackId(1)).len(), 4);
        assert_eq!(c.nodes_with_attr(&Attr::gpu()).len(), 1);
        assert_eq!(c.nodes_with_attr(&Attr::new("ssd")).len(), 2);
    }
}
