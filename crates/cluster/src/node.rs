//! Node, rack, and attribute identifiers.

use std::fmt;

/// Identifier of a machine in the cluster, dense in `0..cluster.num_nodes()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index of the node in dense arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// Identifier of a rack, dense in `0..cluster.num_racks()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RackId(pub u32);

impl RackId {
    /// Index of the rack in dense arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

/// A static node attribute, e.g. "gpu" or "ssd" (paper Sec. 2.2, static
/// heterogeneity).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Attr(pub String);

impl Attr {
    /// Creates an attribute from any string-like value.
    pub fn new(s: impl Into<String>) -> Self {
        Attr(s.into())
    }

    /// The common GPU attribute used throughout the paper's examples.
    pub fn gpu() -> Self {
        Attr::new("gpu")
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Attr {
    fn from(s: &str) -> Self {
        Attr::new(s)
    }
}

/// A machine: identity, rack membership, and static attributes.
#[derive(Debug, Clone)]
pub struct Node {
    /// Dense node id.
    pub id: NodeId,
    /// Rack this node lives in.
    pub rack: RackId,
    /// Static attributes (sorted for deterministic iteration).
    pub attrs: Vec<Attr>,
}

impl Node {
    /// Whether the node carries the given attribute.
    pub fn has_attr(&self, attr: &Attr) -> bool {
        self.attrs.iter().any(|a| a == attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "M3");
        assert_eq!(RackId(1).to_string(), "rack1");
        assert_eq!(Attr::gpu().to_string(), "gpu");
    }

    #[test]
    fn node_attr_lookup() {
        let n = Node {
            id: NodeId(0),
            rack: RackId(0),
            attrs: vec![Attr::gpu()],
        };
        assert!(n.has_attr(&Attr::gpu()));
        assert!(!n.has_attr(&Attr::new("ssd")));
    }
}
