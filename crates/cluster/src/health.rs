//! Node performance health: live slowdown factors and announced
//! maintenance windows.
//!
//! Fail-stop state (up/down) lives in the [`Ledger`](crate::Ledger)'s
//! free/down partition; this module tracks the *continuous* degradation
//! dimension the paper's model omits: nodes that are up but slow (thermal
//! throttling, noisy neighbors, draining disks) and maintenance windows
//! announced in advance. The ledger consults the announced windows in its
//! availability queries so plan-ahead schedules around a window it knows
//! is coming instead of placing work that will straddle it.
//!
//! Unannounced degradation is deliberately *not* part of availability:
//! the scheduler only observes its effects (stretched runtimes,
//! stragglers), which is what the straggler defense reacts to.

use crate::node::NodeId;
use crate::Time;

/// One announced maintenance window: the node runs degraded (or is best
/// avoided) during `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceWindow {
    pub node: NodeId,
    pub start: Time,
    pub end: Time,
}

/// Per-node performance health, owned by the ledger.
#[derive(Debug, Clone)]
pub struct NodeHealth {
    /// Current runtime multiplier per node; 1.0 means healthy, 4.0 means
    /// work on the node takes 4x as long.
    factor: Vec<f64>,
    /// Announced windows, kept sorted by (start, node, end).
    windows: Vec<MaintenanceWindow>,
}

impl NodeHealth {
    /// All nodes healthy, nothing announced.
    pub fn new(num_nodes: usize) -> Self {
        NodeHealth {
            factor: vec![1.0; num_nodes],
            windows: Vec::new(),
        }
    }

    /// The node's current runtime multiplier (>= 1).
    pub fn factor(&self, node: NodeId) -> f64 {
        self.factor[node.index()]
    }

    /// Sets the node's current runtime multiplier. Values below 1 clamp
    /// to 1 (a perf fault never speeds a node up).
    pub fn set_factor(&mut self, node: NodeId, factor: f64) {
        self.factor[node.index()] = factor.max(1.0);
    }

    /// Whether the node currently runs slower than nominal.
    pub fn is_degraded(&self, node: NodeId) -> bool {
        self.factor[node.index()] > 1.0
    }

    /// Number of nodes currently degraded.
    pub fn degraded_count(&self) -> usize {
        self.factor.iter().filter(|&&f| f > 1.0).count()
    }

    /// Registers an announced maintenance window. Zero-length windows are
    /// dropped.
    pub fn announce(&mut self, node: NodeId, start: Time, end: Time) {
        if end <= start {
            return;
        }
        self.windows.push(MaintenanceWindow { node, start, end });
        self.windows.sort_by_key(|w| (w.start, w.node, w.end));
    }

    /// The announced windows, in deterministic order.
    pub fn announced(&self) -> &[MaintenanceWindow] {
        &self.windows
    }

    /// Whether an announced window covers the node at time `t`.
    pub fn in_maintenance(&self, node: NodeId, t: Time) -> bool {
        self.windows
            .iter()
            .any(|w| w.node == node && w.start <= t && t < w.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_healthy() {
        let h = NodeHealth::new(4);
        assert_eq!(h.factor(NodeId(2)), 1.0);
        assert!(!h.is_degraded(NodeId(2)));
        assert_eq!(h.degraded_count(), 0);
        assert!(h.announced().is_empty());
    }

    #[test]
    fn factor_clamps_below_one() {
        let mut h = NodeHealth::new(2);
        h.set_factor(NodeId(0), 0.25);
        assert_eq!(h.factor(NodeId(0)), 1.0);
        h.set_factor(NodeId(0), 3.5);
        assert_eq!(h.factor(NodeId(0)), 3.5);
        assert_eq!(h.degraded_count(), 1);
    }

    #[test]
    fn maintenance_windows_are_half_open() {
        let mut h = NodeHealth::new(2);
        h.announce(NodeId(1), 10, 20);
        assert!(!h.in_maintenance(NodeId(1), 9));
        assert!(h.in_maintenance(NodeId(1), 10));
        assert!(h.in_maintenance(NodeId(1), 19));
        assert!(!h.in_maintenance(NodeId(1), 20));
        assert!(!h.in_maintenance(NodeId(0), 15));
    }

    #[test]
    fn zero_length_announcement_dropped() {
        let mut h = NodeHealth::new(2);
        h.announce(NodeId(0), 10, 10);
        assert!(h.announced().is_empty());
    }

    #[test]
    fn announcements_sort_deterministically() {
        let mut h = NodeHealth::new(4);
        h.announce(NodeId(3), 50, 60);
        h.announce(NodeId(1), 10, 20);
        h.announce(NodeId(2), 10, 30);
        let starts: Vec<Time> = h.announced().iter().map(|w| w.start).collect();
        assert_eq!(starts, vec![10, 10, 50]);
        assert_eq!(h.announced()[0].node, NodeId(1));
    }
}
