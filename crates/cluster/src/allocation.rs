//! Space-time allocation ledger.
//!
//! The ledger records which nodes each running job holds and when those
//! nodes are *expected* to free up (from the job's runtime estimate, which
//! the scheduler may revise as mis-estimates are observed, paper Sec. 7.1).
//! Plan-ahead (Sec. 2.3.2) queries the ledger for availability at future
//! time slices: a node busy until `e` is available for any slice `t >= e`.

use std::collections::BTreeMap;

use crate::health::NodeHealth;
use crate::nodeset::NodeSet;
use crate::Time;

/// Opaque handle naming one gang allocation (typically a job id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocHandle(pub u64);

/// One live allocation.
#[derive(Debug, Clone)]
struct Alloc {
    nodes: NodeSet,
    expected_end: Time,
}

/// Errors from ledger operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// A requested node is already held by another allocation.
    NodeBusy(crate::NodeId),
    /// A requested node is marked down (failed / unavailable).
    NodeDown(crate::NodeId),
    /// A node cannot be marked down while an allocation still holds it
    /// (the caller must evict the owning gang first).
    NodeAllocated(crate::NodeId, AllocHandle),
    /// The handle is already in use.
    DuplicateHandle(AllocHandle),
    /// The handle does not name a live allocation.
    UnknownHandle(AllocHandle),
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::NodeBusy(n) => write!(f, "node {n} is already allocated"),
            LedgerError::NodeDown(n) => write!(f, "node {n} is down"),
            LedgerError::NodeAllocated(n, h) => {
                write!(f, "node {n} still held by {h:?}; evict before marking down")
            }
            LedgerError::DuplicateHandle(h) => write!(f, "allocation handle {h:?} already live"),
            LedgerError::UnknownHandle(h) => write!(f, "no live allocation {h:?}"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// Tracks current node ownership and expected future availability.
///
/// Every node is in exactly one of three states — **free**, **allocated**
/// (owned by a live [`AllocHandle`]), or **down** (failed / drained) — and
/// the conservation invariant `free + allocated + down == total` holds
/// after every operation. Down nodes are invisible to every availability
/// query, so plan-ahead never counts capacity that a fault has removed.
#[derive(Debug, Clone)]
pub struct Ledger {
    num_nodes: usize,
    free: NodeSet,
    down: NodeSet,
    owner: Vec<Option<AllocHandle>>,
    allocs: BTreeMap<AllocHandle, Alloc>,
    health: NodeHealth,
}

impl Ledger {
    /// Creates a ledger for a cluster of `num_nodes` nodes, all free.
    pub fn new(num_nodes: usize) -> Self {
        Ledger {
            num_nodes,
            free: NodeSet::full(num_nodes),
            down: NodeSet::empty(num_nodes),
            owner: vec![None; num_nodes],
            allocs: BTreeMap::new(),
            health: NodeHealth::new(num_nodes),
        }
    }

    /// The performance-health view: live slowdown factors plus announced
    /// maintenance windows. Fail-stop state stays in free/down.
    pub fn health(&self) -> &NodeHealth {
        &self.health
    }

    /// Mutable health view, updated by the fault-replay layer.
    pub fn health_mut(&mut self) -> &mut NodeHealth {
        &mut self.health
    }

    /// Universe size.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The currently free nodes (excludes down nodes).
    pub fn free_nodes(&self) -> &NodeSet {
        &self.free
    }

    /// The currently down (failed / unavailable) nodes.
    pub fn down_nodes(&self) -> &NodeSet {
        &self.down
    }

    /// Number of nodes currently held by allocations.
    pub fn busy_count(&self) -> usize {
        self.num_nodes - self.free.len() - self.down.len()
    }

    /// Number of nodes currently down.
    pub fn down_count(&self) -> usize {
        self.down.len()
    }

    /// Marks a node down. The node must not be held by an allocation (the
    /// caller evicts the owning gang first); marking an already-down node
    /// is a no-op so repeated fault reports are harmless.
    pub fn mark_down(&mut self, node: crate::NodeId) -> Result<(), LedgerError> {
        if self.down.contains(node) {
            return Ok(());
        }
        if let Some(h) = self.owner[node.index()] {
            return Err(LedgerError::NodeAllocated(node, h));
        }
        self.free.remove(node);
        self.down.insert(node);
        Ok(())
    }

    /// Marks a node repaired, returning it to the free pool. A no-op for
    /// nodes that are not down.
    pub fn mark_up(&mut self, node: crate::NodeId) {
        if self.down.contains(node) {
            self.down.remove(node);
            self.free.insert(node);
        }
    }

    /// Verifies the internal consistency of the ledger: partition of the
    /// node universe into free/allocated/down, and agreement between the
    /// owner index and the allocation table. Returns a description of the
    /// first violation found.
    // srclint: checked-indexing: ix ranges over 0..num_nodes and `owner`
    // is allocated with exactly num_nodes entries at construction.
    pub fn validate(&self) -> Result<(), String> {
        let mut allocated = 0usize;
        for ix in 0..self.num_nodes {
            let node = crate::NodeId(ix as u32);
            let f = self.free.contains(node);
            let d = self.down.contains(node);
            let o = self.owner[ix].is_some();
            if (f as u8) + (d as u8) + (o as u8) != 1 {
                return Err(format!(
                    "node {node} state not exclusive: free={f} down={d} owned={o}"
                ));
            }
            if let Some(h) = self.owner[ix] {
                allocated += 1;
                match self.allocs.get(&h) {
                    Some(a) if a.nodes.contains(node) => {}
                    _ => return Err(format!("owner index for {node} disagrees with {h:?}")),
                }
            }
        }
        let alloc_total: usize = self.allocs.values().map(|a| a.nodes.len()).sum();
        if alloc_total != allocated {
            return Err(format!(
                "allocation table holds {alloc_total} nodes but owner index has {allocated}"
            ));
        }
        if self.free.len() + allocated + self.down.len() != self.num_nodes {
            return Err(format!(
                "conservation violated: {} free + {} allocated + {} down != {} total",
                self.free.len(),
                allocated,
                self.down.len(),
                self.num_nodes
            ));
        }
        Ok(())
    }

    /// The handle holding a node, if any.
    pub fn owner_of(&self, node: crate::NodeId) -> Option<AllocHandle> {
        self.owner[node.index()]
    }

    /// Whether a handle names a live allocation.
    pub fn is_live(&self, handle: AllocHandle) -> bool {
        self.allocs.contains_key(&handle)
    }

    /// Nodes held by a live allocation.
    pub fn nodes_of(&self, handle: AllocHandle) -> Option<&NodeSet> {
        self.allocs.get(&handle).map(|a| &a.nodes)
    }

    /// Expected completion time of a live allocation.
    pub fn expected_end(&self, handle: AllocHandle) -> Option<Time> {
        self.allocs.get(&handle).map(|a| a.expected_end)
    }

    /// Grants `nodes` to `handle` until roughly `expected_end`.
    pub fn allocate(
        &mut self,
        handle: AllocHandle,
        nodes: NodeSet,
        expected_end: Time,
    ) -> Result<(), LedgerError> {
        if self.allocs.contains_key(&handle) {
            return Err(LedgerError::DuplicateHandle(handle));
        }
        for n in nodes.iter() {
            if self.owner[n.index()].is_some() {
                return Err(LedgerError::NodeBusy(n));
            }
            if self.down.contains(n) {
                return Err(LedgerError::NodeDown(n));
            }
        }
        for n in nodes.iter() {
            self.owner[n.index()] = Some(handle);
            self.free.remove(n);
        }
        self.allocs.insert(
            handle,
            Alloc {
                nodes,
                expected_end,
            },
        );
        Ok(())
    }

    /// Releases an allocation, returning the freed nodes.
    pub fn release(&mut self, handle: AllocHandle) -> Result<NodeSet, LedgerError> {
        let alloc = self
            .allocs
            .remove(&handle)
            .ok_or(LedgerError::UnknownHandle(handle))?;
        for n in alloc.nodes.iter() {
            self.owner[n.index()] = None;
            self.free.insert(n);
        }
        Ok(alloc.nodes)
    }

    /// Revises the expected completion time of a running allocation (used
    /// when a runtime under-estimate is detected and bumped upward).
    pub fn set_expected_end(
        &mut self,
        handle: AllocHandle,
        expected_end: Time,
    ) -> Result<(), LedgerError> {
        self.allocs
            .get_mut(&handle)
            .map(|a| a.expected_end = expected_end)
            .ok_or(LedgerError::UnknownHandle(handle))
    }

    /// The subset of `within` expected to be free at time `t`: nodes free
    /// now, plus busy nodes whose expected end is at or before `t` —
    /// minus nodes inside an announced maintenance window at `t`, so
    /// plan-ahead schedules around degradation it has been told about.
    pub fn free_at(&self, within: &NodeSet, t: Time) -> NodeSet {
        let mut out = self.free.and(within);
        for alloc in self.allocs.values() {
            if alloc.expected_end <= t {
                out = out.or(&alloc.nodes.and(within));
            }
        }
        for w in self.health.announced() {
            if w.start <= t && t < w.end && out.contains(w.node) {
                out.remove(w.node);
            }
        }
        out
    }

    /// Count of nodes in `within` expected to be free at time `t`.
    pub fn avail_at(&self, within: &NodeSet, t: Time) -> usize {
        self.free_at(within, t).len()
    }

    /// All live allocation handles, in ascending handle order.
    pub fn handles(&self) -> impl Iterator<Item = AllocHandle> + '_ {
        self.allocs.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn set(cap: usize, ids: &[u32]) -> NodeSet {
        NodeSet::from_ids(cap, ids.iter().map(|&i| NodeId(i)))
    }

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut l = Ledger::new(8);
        let h = AllocHandle(1);
        l.allocate(h, set(8, &[0, 1, 2]), 100)
            .expect("nodes are free and the handle is fresh; allocate must succeed");
        assert_eq!(l.busy_count(), 3);
        assert_eq!(l.owner_of(NodeId(1)), Some(h));
        assert_eq!(
            l.nodes_of(h).expect("handle is live in the ledger").len(),
            3
        );
        let freed = l.release(h).expect("handle is live; release must succeed");
        assert_eq!(freed.len(), 3);
        assert_eq!(l.busy_count(), 0);
        assert_eq!(l.owner_of(NodeId(1)), None);
    }

    #[test]
    fn double_allocation_rejected() {
        let mut l = Ledger::new(8);
        l.allocate(AllocHandle(1), set(8, &[0, 1]), 10)
            .expect("nodes are free and the handle is fresh; allocate must succeed");
        let err = l.allocate(AllocHandle(2), set(8, &[1, 2]), 10).unwrap_err();
        assert_eq!(err, LedgerError::NodeBusy(NodeId(1)));
        // The failed allocation must not have taken node 2.
        assert!(l.free_nodes().contains(NodeId(2)));
    }

    #[test]
    fn duplicate_handle_rejected() {
        let mut l = Ledger::new(8);
        l.allocate(AllocHandle(1), set(8, &[0]), 10)
            .expect("nodes are free and the handle is fresh; allocate must succeed");
        let err = l.allocate(AllocHandle(1), set(8, &[1]), 10).unwrap_err();
        assert_eq!(err, LedgerError::DuplicateHandle(AllocHandle(1)));
    }

    #[test]
    fn unknown_handle_release() {
        let mut l = Ledger::new(4);
        assert!(matches!(
            l.release(AllocHandle(9)),
            Err(LedgerError::UnknownHandle(_))
        ));
    }

    #[test]
    fn future_availability_honors_expected_end() {
        let mut l = Ledger::new(4);
        l.allocate(AllocHandle(1), set(4, &[0, 1]), 50)
            .expect("nodes are free and the handle is fresh; allocate must succeed");
        l.allocate(AllocHandle(2), set(4, &[2]), 20)
            .expect("nodes are free and the handle is fresh; allocate must succeed");
        let all = NodeSet::full(4);
        assert_eq!(l.avail_at(&all, 0), 1); // only node 3 free now
        assert_eq!(l.avail_at(&all, 20), 2); // node 2 frees at 20
        assert_eq!(l.avail_at(&all, 49), 2);
        assert_eq!(l.avail_at(&all, 50), 4);
    }

    #[test]
    fn bumped_estimate_moves_availability() {
        let mut l = Ledger::new(2);
        l.allocate(AllocHandle(1), set(2, &[0]), 10)
            .expect("nodes are free and the handle is fresh; allocate must succeed");
        assert_eq!(l.avail_at(&NodeSet::full(2), 10), 2);
        l.set_expected_end(AllocHandle(1), 30)
            .expect("handle is live; estimate update must succeed");
        assert_eq!(l.avail_at(&NodeSet::full(2), 10), 1);
        assert_eq!(l.avail_at(&NodeSet::full(2), 30), 2);
    }

    #[test]
    fn free_at_respects_subset() {
        let mut l = Ledger::new(6);
        l.allocate(AllocHandle(1), set(6, &[0, 1]), 10)
            .expect("nodes are free and the handle is fresh; allocate must succeed");
        let rack = set(6, &[0, 1, 2]);
        assert_eq!(l.avail_at(&rack, 0), 1);
        assert_eq!(l.avail_at(&rack, 10), 3);
    }

    #[test]
    fn down_node_lifecycle() {
        let mut l = Ledger::new(4);
        l.mark_down(NodeId(1))
            .expect("node is free; mark_down must succeed");
        assert_eq!(l.down_count(), 1);
        assert!(!l.free_nodes().contains(NodeId(1)));
        assert!(l.down_nodes().contains(NodeId(1)));
        // Idempotent re-report.
        l.mark_down(NodeId(1))
            .expect("node is free; mark_down must succeed");
        assert_eq!(l.down_count(), 1);
        l.validate().expect("ledger invariants must hold");
        l.mark_up(NodeId(1));
        assert_eq!(l.down_count(), 0);
        assert!(l.free_nodes().contains(NodeId(1)));
        // mark_up of a healthy node is a no-op.
        l.mark_up(NodeId(2));
        l.validate().expect("ledger invariants must hold");
    }

    #[test]
    fn allocate_rejects_down_node() {
        let mut l = Ledger::new(4);
        l.mark_down(NodeId(2))
            .expect("node is free; mark_down must succeed");
        let err = l.allocate(AllocHandle(1), set(4, &[1, 2]), 10).unwrap_err();
        assert_eq!(err, LedgerError::NodeDown(NodeId(2)));
        // The failed allocation must not have taken node 1.
        assert!(l.free_nodes().contains(NodeId(1)));
        l.validate().expect("ledger invariants must hold");
    }

    #[test]
    fn mark_down_rejects_allocated_node() {
        let mut l = Ledger::new(4);
        l.allocate(AllocHandle(7), set(4, &[0, 1]), 10)
            .expect("nodes are free and the handle is fresh; allocate must succeed");
        let err = l.mark_down(NodeId(0)).unwrap_err();
        assert_eq!(err, LedgerError::NodeAllocated(NodeId(0), AllocHandle(7)));
        // After eviction the node can go down.
        l.release(AllocHandle(7))
            .expect("handle is live; release must succeed");
        l.mark_down(NodeId(0))
            .expect("node is free; mark_down must succeed");
        l.validate().expect("ledger invariants must hold");
    }

    #[test]
    fn down_nodes_excluded_from_future_availability() {
        let mut l = Ledger::new(4);
        l.allocate(AllocHandle(1), set(4, &[0]), 10)
            .expect("nodes are free and the handle is fresh; allocate must succeed");
        l.mark_down(NodeId(3))
            .expect("node is free; mark_down must succeed");
        let all = NodeSet::full(4);
        // Now: nodes 1, 2 free; node 0 busy until 10; node 3 down.
        assert_eq!(l.avail_at(&all, 0), 2);
        // At 10 the allocation frees, but the down node stays excluded.
        assert_eq!(l.avail_at(&all, 10), 3);
        assert_eq!(l.busy_count(), 1);
        l.validate().expect("ledger invariants must hold");
    }

    #[test]
    fn announced_maintenance_excluded_from_future_availability() {
        let mut l = Ledger::new(4);
        l.health_mut().announce(NodeId(2), 10, 30);
        let all = NodeSet::full(4);
        // Before and after the window the node counts; inside it does not.
        assert_eq!(l.avail_at(&all, 0), 4);
        assert_eq!(l.avail_at(&all, 10), 3);
        assert_eq!(l.avail_at(&all, 29), 3);
        assert_eq!(l.avail_at(&all, 30), 4);
        assert!(!l.free_at(&all, 15).contains(NodeId(2)));
        // Unannounced degradation does not affect availability.
        l.health_mut().set_factor(NodeId(1), 4.0);
        assert_eq!(l.avail_at(&all, 0), 4);
        l.validate().expect("ledger invariants must hold");
    }

    #[test]
    fn validate_accepts_mixed_states() {
        let mut l = Ledger::new(8);
        l.allocate(AllocHandle(1), set(8, &[0, 1, 2]), 100)
            .expect("nodes are free and the handle is fresh; allocate must succeed");
        l.mark_down(NodeId(5))
            .expect("node is free; mark_down must succeed");
        l.mark_down(NodeId(6))
            .expect("node is free; mark_down must succeed");
        l.validate().expect("ledger invariants must hold");
        l.release(AllocHandle(1))
            .expect("handle is live; release must succeed");
        l.mark_up(NodeId(5));
        l.validate().expect("ledger invariants must hold");
        assert_eq!(l.busy_count(), 0);
        assert_eq!(l.down_count(), 1);
    }
}
