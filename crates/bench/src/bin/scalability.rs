//! Sec. 7.3 scalability: cycle/solver latency distribution as the
//! simulated cluster grows (the paper reports 80 → 1000 → 10000-node
//! simulations with "insignificant degradation in scheduling quality").
//!
//! The GS HET workload is scaled with the cluster so utilization stays
//! near 100%. Pass `--xl` to include the 10000-node point (slower).
//!
//! Run: `cargo run --release -p tetrisched-bench --bin scalability [--xl]`

use tetrisched_bench::harness::{run_spec, RunSpec, SchedulerKind};
use tetrisched_cluster::Cluster;
use tetrisched_core::TetriSchedConfig;
use tetrisched_sim::{FaultPlan, PerfFaultPlan, RetryPolicy, StragglerConfig};
use tetrisched_workloads::Workload;

fn main() {
    let xl = std::env::args().any(|a| a == "--xl");
    let mut sizes: Vec<(usize, usize, usize)> = vec![
        // (racks, nodes/rack, jobs)
        (8, 10, 60),    // RC80
        (8, 32, 120),   // RC256
        (10, 100, 240), // 1000-node simulated cluster
    ];
    if xl {
        sizes.push((20, 500, 480)); // 10000-node simulated cluster
    }

    println!(
        "{:<12}{:>8}{:>12}{:>16}{:>16}{:>16}{:>14}",
        "nodes", "jobs", "total SLO %", "cycle mean ms", "cycle p99 ms", "solver mean ms", "util %"
    );
    for (racks, per, jobs) in sizes {
        let cluster = Cluster::uniform(racks, per, racks / 4);
        let report = run_spec(&RunSpec {
            workload: Workload::GsHet,
            cluster: cluster.clone(),
            num_jobs: jobs,
            seed: 42,
            estimate_error: 0.0,
            kind: SchedulerKind::Tetri(TetriSchedConfig::default()),
            cycle_period: 4,
            utilization: 1.15,
            slowdown: 2.0,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            perf_faults: PerfFaultPlan::none(),
            stragglers: StragglerConfig::disabled(),
        });
        let m = &report.metrics;
        println!(
            "{:<12}{:>8}{:>12.1}{:>16.2}{:>16.2}{:>16.2}{:>14.1}",
            cluster.num_nodes(),
            jobs,
            m.total_slo_attainment(),
            m.cycle_latency.mean() * 1e3,
            m.cycle_latency.quantile(0.99) * 1e3,
            m.solver_latency.mean() * 1e3,
            m.utilization() * 100.0,
        );
    }
    println!(
        "\nExpectation (paper Sec. 7.3): cycle latency distribution stays \
         similar as the cluster scales, with no significant quality loss."
    );
}
