//! Runs the complete evaluation suite (Tables 1–2, Figs. 6–12) and emits a
//! Markdown report suitable for `EXPERIMENTS.md`.
//!
//! Run: `cargo run --release -p tetrisched-bench --bin report [--smoke]`

use std::time::Instant;

use tetrisched_bench::figures::{fig10, fig11, fig12_cdf, fig6, fig7, fig8, fig9, FigScale};
use tetrisched_bench::table::MetricsRow;
use tetrisched_workloads::Workload;

fn md_series(rows: &[MetricsRow], x_label: &str, metric: fn(&MetricsRow) -> f64) -> String {
    let mut schedulers: Vec<String> = Vec::new();
    let mut xs: Vec<f64> = Vec::new();
    for r in rows {
        if !schedulers.contains(&r.scheduler) {
            schedulers.push(r.scheduler.clone());
        }
        if !xs.contains(&r.x) {
            xs.push(r.x);
        }
    }
    let mut out = String::new();
    out.push_str(&format!("| {x_label} |"));
    for x in &xs {
        out.push_str(&format!(" {x} |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &xs {
        out.push_str("---|");
    }
    out.push('\n');
    for s in &schedulers {
        out.push_str(&format!("| {s} |"));
        for x in &xs {
            match rows.iter().find(|r| &r.scheduler == s && r.x == *x) {
                Some(r) => out.push_str(&format!(" {:.1} |", metric(r))),
                None => out.push_str(" - |"),
            }
        }
        out.push('\n');
    }
    out
}

fn emit_slo_figure(id: &str, what: &str, rows: &[MetricsRow], x_label: &str) {
    println!("### {id}: {what}\n");
    for (panel, f) in [
        (
            "SLO attainment, all SLO jobs (%)",
            (|r: &MetricsRow| r.total_slo) as fn(&MetricsRow) -> f64,
        ),
        ("SLO attainment, accepted (%)", |r| r.accepted_slo),
        ("SLO attainment, w/o reservation (%)", |r| r.nores_slo),
        ("Best-effort mean latency (s)", |r| r.be_latency),
    ] {
        println!("**{panel}**\n");
        println!("{}", md_series(rows, x_label, f));
    }
}

fn main() {
    let scale = FigScale::from_args();
    let t0 = Instant::now();
    println!("## Measured results\n");
    println!(
        "Scale: {} jobs/run, seed {}, full clusters: {}\n",
        scale.num_jobs, scale.seed, scale.full_clusters
    );

    println!("### Table 1: workload compositions (as generated)\n");
    println!("| Workload | SLO | BE | Unconstrained | GPU | MPI |");
    println!("|---|---|---|---|---|---|");
    for w in [
        Workload::GrSlo,
        Workload::GrMix,
        Workload::GsMix,
        Workload::GsHet,
    ] {
        let c = w.composition();
        println!(
            "| {} | {:.0}% | {:.0}% | {:.0}% | {:.0}% | {:.0}% |",
            w.name(),
            c.slo * 100.0,
            c.be * 100.0,
            c.unconstrained * 100.0,
            c.gpu * 100.0,
            c.mpi * 100.0
        );
    }
    println!();

    eprintln!("[{:>6.1}s] fig6...", t0.elapsed().as_secs_f64());
    let rows = fig6(&scale);
    emit_slo_figure(
        "Fig. 6",
        "GR MIX on RC256 vs estimate error",
        &rows,
        "error %",
    );

    eprintln!("[{:>6.1}s] fig7...", t0.elapsed().as_secs_f64());
    let rows = fig7(&scale);
    emit_slo_figure(
        "Fig. 7",
        "GR SLO on RC256 vs estimate error",
        &rows,
        "error %",
    );

    eprintln!("[{:>6.1}s] fig8...", t0.elapsed().as_secs_f64());
    let rows = fig8(&scale);
    emit_slo_figure(
        "Fig. 8",
        "GS MIX on RC80 vs estimate error",
        &rows,
        "error %",
    );

    eprintln!("[{:>6.1}s] fig9...", t0.elapsed().as_secs_f64());
    let rows = fig9(&scale);
    emit_slo_figure(
        "Fig. 9",
        "GS HET soft-constraint ablation (TetriSched vs -NH vs CS)",
        &rows,
        "error %",
    );

    eprintln!("[{:>6.1}s] fig10...", t0.elapsed().as_secs_f64());
    let rows = fig10(&scale);
    emit_slo_figure(
        "Fig. 10",
        "GS HET global-scheduling ablation (TetriSched vs -NG vs CS)",
        &rows,
        "error %",
    );

    eprintln!("[{:>6.1}s] fig11/12...", t0.elapsed().as_secs_f64());
    let rows = fig11(&scale);
    emit_slo_figure(
        "Fig. 11",
        "GS HET vs plan-ahead window",
        &rows,
        "plan-ahead s",
    );

    println!("### Fig. 12(a)/(b): solver and cycle latency vs plan-ahead\n");
    for (panel, f) in [
        (
            "solver latency mean (ms)",
            (|r: &MetricsRow| r.solver_ms_mean) as fn(&MetricsRow) -> f64,
        ),
        ("solver latency p99 (ms)", |r| r.solver_ms_p99),
        ("cycle latency mean (ms)", |r| r.cycle_ms_mean),
        ("cycle latency p99 (ms)", |r| r.cycle_ms_p99),
    ] {
        println!("**{panel}**\n");
        println!("{}", md_series(&rows, "plan-ahead s", f));
    }

    println!("### Fig. 12(c): latency CDF quantiles at max plan-ahead\n");
    println!("| series | p50 (ms) | p90 (ms) | p99 (ms) |");
    println!("|---|---|---|---|");
    for (name, cdf) in fig12_cdf(&scale) {
        let q = |frac: f64| -> f64 {
            if cdf.is_empty() {
                return 0.0;
            }
            let idx = ((cdf.len() as f64 - 1.0) * frac).round() as usize;
            cdf[idx].0 * 1e3
        };
        println!(
            "| {name} | {:.1} | {:.1} | {:.1} |",
            q(0.5),
            q(0.9),
            q(0.99)
        );
    }

    eprintln!("[{:>6.1}s] done", t0.elapsed().as_secs_f64());
}
