//! Reproduces the Sec. 5.1 MILP example (Fig. 4): three jobs on three
//! machines whose deadlines are only jointly satisfiable with global
//! scheduling and plan-ahead.

use tetrisched_cluster::{NodeSet, PartitionSet};
use tetrisched_core::{compile, CompileInput};
use tetrisched_milp::SolverConfig;
use tetrisched_strl::StrlExpr;

fn main() {
    let all = NodeSet::full(3);
    let job1 = StrlExpr::nck(all.clone(), 2, 0, 10, 1.0);
    let job2 = StrlExpr::max([
        StrlExpr::nck(all.clone(), 1, 0, 20, 1.0),
        StrlExpr::nck(all.clone(), 1, 10, 20, 1.0),
        StrlExpr::nck(all.clone(), 1, 20, 20, 1.0),
    ]);
    let job3 = StrlExpr::max([
        StrlExpr::nck(all.clone(), 3, 0, 10, 1.0),
        StrlExpr::nck(all.clone(), 3, 10, 10, 1.0),
    ]);
    let expr = StrlExpr::sum([job1, job2, job3]);
    println!("global STRL expression:\n  {expr}\n");

    let partitions = PartitionSet::refine(3, &[all]);
    let input = CompileInput {
        expr: &expr,
        partitions: &partitions,
        now: 0,
        quantum: 10,
        n_slices: 4,
    };
    let compiled = compile(&input, &|_, _| 3).expect("compile");
    println!(
        "MILP: {} variables, {} constraints",
        compiled.model.num_vars(),
        compiled.model.num_constraints()
    );
    let sol = compiled.model.solve(&SolverConfig::exact()).expect("solve");
    println!("objective: {} (all three jobs scheduled)\n", sol.objective);
    for c in compiled.chosen(&sol) {
        let leaf = &compiled.leaves[c.leaf];
        println!(
            "job leaf k={} starts at t={} for {}s",
            leaf.k, leaf.start, leaf.dur
        );
    }
    println!("\nFig. 4 order: job1 @ 0, job3 @ 10, job2 @ 20");
}
