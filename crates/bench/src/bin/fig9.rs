//! Regenerates Fig. 9 of the paper. Run with `--smoke` for a quick pass.

use tetrisched_bench::figures::{fig9, FigScale};
use tetrisched_bench::table::{print_figure, slo_panels};

fn main() {
    let scale = FigScale::from_args();
    let rows = fig9(&scale);
    print_figure("Fig. 9", "x: estimate error (%)", &rows, &slo_panels());
}
