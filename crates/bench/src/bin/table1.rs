//! Prints Tables 1 and 2 and the Fig. 5 value-function constants.

use tetrisched_bench::figures::print_tables;

fn main() {
    print_tables();
}
