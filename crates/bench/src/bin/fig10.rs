//! Regenerates Fig. 10 of the paper. Run with `--smoke` for a quick pass.

use tetrisched_bench::figures::{fig10, FigScale};
use tetrisched_bench::table::{print_figure, slo_panels};

fn main() {
    let scale = FigScale::from_args();
    let rows = fig10(&scale);
    print_figure("Fig. 10", "x: estimate error (%)", &rows, &slo_panels());
}
