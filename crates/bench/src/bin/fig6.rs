//! Regenerates Fig. 6 of the paper. Run with `--smoke` for a quick pass.

use tetrisched_bench::figures::{fig6, FigScale};
use tetrisched_bench::table::{print_figure, slo_panels};

fn main() {
    let scale = FigScale::from_args();
    let rows = fig6(&scale);
    print_figure("Fig. 6", "x: estimate error (%)", &rows, &slo_panels());
}
