//! Robustness under node churn (beyond the paper, which evaluates healthy
//! clusters only): GS HET on RC80 while nodes fail and recover according to
//! a seeded MTBF/MTTR renewal process, plus one scripted correlated rack
//! outage scenario.
//!
//! Sweeps MTBF from rare to punishing at fixed MTTR and reports the four
//! paper metrics alongside the robustness counters (evictions, retries,
//! abandoned-after-retries, degraded cycles, availability).
//!
//! Run: `cargo run --release -p tetrisched-bench --bin churn [--smoke]`

use tetrisched_bench::figures::FigScale;
use tetrisched_bench::harness::{run_spec, RunSpec, SchedulerKind};
use tetrisched_bench::table::{print_figure, robustness_panels, MetricsRow};
use tetrisched_core::TetriSchedConfig;
use tetrisched_sim::{FaultConfig, FaultPlan, FaultScope, FaultScript, RetryPolicy};
use tetrisched_workloads::Workload;

/// Fault-plan horizon: long enough to cover any churn run at these scales.
const FAULT_HORIZON: u64 = 100_000;

fn churn_spec(scale: &FigScale, kind: SchedulerKind, seed: u64, faults: FaultPlan) -> RunSpec {
    RunSpec {
        workload: Workload::GsHet,
        cluster: scale.rc80(),
        num_jobs: scale.num_jobs,
        seed,
        estimate_error: 0.0,
        kind,
        cycle_period: scale.cycle_period,
        utilization: 1.15,
        slowdown: 2.0,
        faults,
        retry: RetryPolicy::default(),
    }
}

fn main() {
    let scale = FigScale::from_args();
    let cluster = scale.rc80();
    let num_nodes = cluster.num_nodes();
    println!(
        "GS HET / {num_nodes}-node RC80, {} jobs, seed {}, MTTR 60 s\n",
        scale.num_jobs, scale.seed
    );

    // MTBF sweep: infinity (healthy), then every ~2000s down to every
    // ~250s per node. At 250 s with tens of nodes the cluster loses a
    // node every few seconds of simulated time.
    let mtbfs: &[f64] = if scale.full_clusters {
        &[0.0, 4000.0, 1000.0, 250.0]
    } else {
        &[0.0, 2000.0, 500.0]
    };

    let kinds = [
        SchedulerKind::Tetri(TetriSchedConfig::default()),
        SchedulerKind::Tetri(TetriSchedConfig::no_global(
            TetriSchedConfig::default().plan_ahead,
        )),
        SchedulerKind::RayonCs,
    ];

    let mut rows = Vec::new();
    for kind in &kinds {
        for &mtbf in mtbfs {
            let reps: Vec<MetricsRow> = (0..scale.replications.max(1))
                .map(|r| {
                    let seed = scale.seed + r as u64;
                    let faults = if mtbf == 0.0 {
                        FaultPlan::none()
                    } else {
                        FaultPlan::generate(
                            num_nodes,
                            &FaultConfig {
                                seed,
                                mtbf,
                                mttr: 60.0,
                                horizon: FAULT_HORIZON,
                            },
                        )
                    };
                    let report = run_spec(&churn_spec(&scale, kind.clone(), seed, faults));
                    MetricsRow::from_report(kind.name(), mtbf, &report)
                })
                .collect();
            rows.push(MetricsRow::averaged(&reps));
        }
    }
    print_figure(
        "Churn: MTBF sweep (0 = healthy cluster)",
        "MTBF s/node",
        &rows,
        &robustness_panels(),
    );

    // Scripted correlated outage: a whole rack goes dark mid-run for 120 s.
    println!("== Correlated outage: rack 0 down [200, 320) ==");
    println!(
        "{:<16}{:>10}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "scheduler", "SLO %", "avail %", "evicted", "retries", "abandoned", "degraded"
    );
    for kind in &kinds {
        let faults = FaultPlan::from_script(
            &cluster,
            &[FaultScript {
                at: 200,
                duration: 120,
                scope: FaultScope::Rack(tetrisched_cluster::RackId(0)),
            }],
        );
        let report = run_spec(&churn_spec(&scale, kind.clone(), scale.seed, faults));
        let m = &report.metrics;
        println!(
            "{:<16}{:>10.1}{:>12.1}{:>12}{:>12}{:>12}{:>10}",
            kind.name(),
            m.total_slo_attainment(),
            m.availability() * 100.0,
            m.evictions,
            m.retries,
            m.abandoned_after_retries,
            m.degraded_cycles,
        );
    }
    println!(
        "\nExpectation: attainment degrades gracefully as MTBF shrinks; no \
         run panics, every evicted gang retries with backoff, and jobs are \
         abandoned only after the retry budget is spent."
    );
}
