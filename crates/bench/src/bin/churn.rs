//! Robustness under node churn (beyond the paper, which evaluates healthy
//! clusters only): GS HET on RC80 while nodes fail and recover according to
//! a seeded MTBF/MTTR renewal process, plus one scripted correlated rack
//! outage scenario.
//!
//! Sweeps MTBF from rare to punishing at fixed MTTR and reports the four
//! paper metrics alongside the robustness counters (evictions, retries,
//! abandoned-after-retries, degraded cycles, availability).
//!
//! With `--perf-faults` the sweep additionally injects seeded slow-node
//! windows; `--stragglers` arms the speculative straggler defense. The
//! `--check` flag runs the deterministic degraded-mode chaos gate instead
//! of the sweep: scripted 4x slowdown on 10% of nodes at 2x saturation,
//! asserting the degradation ladder engages and recovers, every solve's
//! certificate verifies, and the ladder beats the binary cliff on SLO
//! attainment. Nonzero exit on any violation, for CI.
//!
//! Run: `cargo run --release -p tetrisched-bench --bin churn -- \
//!       [--smoke] [--perf-faults] [--stragglers] [--check]`

use tetrisched_bench::figures::FigScale;
use tetrisched_bench::harness::{run_spec, RunSpec, SchedulerKind};
use tetrisched_bench::table::{degraded_panels, print_figure, robustness_panels, MetricsRow};
use tetrisched_cluster::NodeId;
use tetrisched_core::{GovernorConfig, TetriSched, TetriSchedConfig};
use tetrisched_sim::{
    FaultConfig, FaultPlan, FaultScope, FaultScript, PerfFaultConfig, PerfFaultKind, PerfFaultPlan,
    PerfFaultScript, RetryPolicy, SimConfig, SimReport, Simulator, StragglerConfig,
    TelemetryConfig, TraceEvent,
};
use tetrisched_workloads::{GridmixConfig, Workload, WorkloadBuilder};

/// Fault-plan horizon: long enough to cover any churn run at these scales.
const FAULT_HORIZON: u64 = 100_000;

fn churn_spec(
    scale: &FigScale,
    kind: SchedulerKind,
    seed: u64,
    faults: FaultPlan,
    perf_faults: PerfFaultPlan,
    stragglers: StragglerConfig,
) -> RunSpec {
    RunSpec {
        workload: Workload::GsHet,
        cluster: scale.rc80(),
        num_jobs: scale.num_jobs,
        seed,
        estimate_error: 0.0,
        kind,
        cycle_period: scale.cycle_period,
        utilization: 1.15,
        slowdown: 2.0,
        faults,
        retry: RetryPolicy::default(),
        perf_faults,
        stragglers,
    }
}

/// Seeded slow-node windows for the `--perf-faults` sweep: a node drifts
/// into a 2-4x degradation window on average every ~1500 s and stays
/// degraded for ~120 s.
fn sweep_perf_faults(num_nodes: usize, seed: u64) -> PerfFaultPlan {
    PerfFaultPlan::generate(
        num_nodes,
        &PerfFaultConfig {
            seed,
            mtbf: 1500.0,
            duration: 120.0,
            factor_min: 2.0,
            factor_max: 4.0,
            horizon: FAULT_HORIZON,
        },
    )
}

/// One deterministic chaos run for `--check`: closed-loop GS HET at 2x
/// saturation with a scripted mid-run 4x slowdown on 10% of the nodes,
/// traced so the ladder-rung trajectory is observable.
fn chaos_run(scale: &FigScale, governor: GovernorConfig) -> SimReport {
    let cluster = scale.rc80();
    let slow = cluster.num_nodes().div_ceil(10);
    let perf_faults = PerfFaultPlan::from_script(
        &cluster,
        &[PerfFaultScript {
            at: 40,
            duration: 800,
            scope: FaultScope::Nodes((0..slow).map(|i| NodeId(i as u32)).collect()),
            kind: PerfFaultKind::SlowNode { factor: 4.0 },
            announced: false,
        }],
    );
    let cfg = TetriSchedConfig {
        cycle_period: scale.cycle_period,
        certify_solves: true,
        governor,
        ..TetriSchedConfig::default()
    };
    let jobs = WorkloadBuilder::new(GridmixConfig {
        seed: scale.seed,
        num_jobs: scale.num_jobs,
        cluster_size: cluster.num_nodes(),
        target_utilization: 2.0,
        estimate_error: 0.0,
        error_jitter: 0.0,
        slowdown: 2.0,
    })
    .with_estimate_error(Workload::GsHet, 0.0);
    Simulator::new(
        cluster,
        TetriSched::new(cfg),
        SimConfig {
            cycle_period: scale.cycle_period,
            horizon: Some(1_000_000),
            trace: true,
            perf_faults,
            stragglers: StragglerConfig::defaults(),
            telemetry: TelemetryConfig::on(),
            ..SimConfig::default()
        },
    )
    .run(jobs)
}

/// The traced rung trajectory of a run: the rung after each change.
fn rung_trajectory(report: &SimReport) -> Vec<u8> {
    report
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::LadderRung { rung, .. } => Some(*rung),
            _ => None,
        })
        .collect()
}

/// The degraded-mode chaos gate (`--check`). Returns the number of failed
/// assertions; prints one line per check.
fn chaos_check(scale: &FigScale) -> usize {
    // SLO attainment at the smoke job count is too coarse to separate the
    // ladder from the cliff; give the gate enough jobs that a one-job
    // difference is under 3 percentage points.
    let mut scale = scale.clone();
    scale.num_jobs = scale.num_jobs.max(36);
    let scale = &scale;
    // The defaults' work budget is sized for paper-scale MILPs; at smoke
    // scale the solves are small, so the gate tightens the budget until
    // the scripted slowdown actually pushes cycles over it.
    let budget = if scale.full_clusters { 50_000 } else { 400 };
    let mut ladder_gov = GovernorConfig::defaults();
    ladder_gov.work_budget = budget;
    let mut binary_gov = GovernorConfig::binary_fallback();
    binary_gov.work_budget = budget;

    let ladder = chaos_run(scale, ladder_gov);
    let binary = chaos_run(scale, binary_gov);
    let trajectory = rung_trajectory(&ladder);
    let deepest = trajectory.iter().copied().max().unwrap_or(0);
    let last = trajectory.last().copied().unwrap_or(0);

    let mut failures = 0;
    let mut check = |name: &str, ok: bool, detail: String| {
        println!("  [{}] {name}: {detail}", if ok { "ok" } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    let cycles = ladder.metrics.cycle_latency.count();
    check(
        "coverage",
        cycles >= 50,
        format!("{cycles} scheduling cycles (need >= 50)"),
    );
    check(
        "ladder engages",
        deepest > 0,
        format!("deepest rung {deepest}, trajectory {trajectory:?}"),
    );
    check(
        "ladder recovers",
        deepest > 0 && last < deepest,
        format!("final rung {last} after deepest {deepest}"),
    );
    check(
        "certificates verify (ladder)",
        ladder.metrics.certificate_failures == 0 && ladder.metrics.certificates_verified > 0,
        format!(
            "{} verified, {} failed",
            ladder.metrics.certificates_verified, ladder.metrics.certificate_failures
        ),
    );
    check(
        "certificates verify (binary)",
        binary.metrics.certificate_failures == 0,
        format!("{} failed", binary.metrics.certificate_failures),
    );
    let (ladder_slo, binary_slo) = (
        ladder.metrics.total_slo_attainment(),
        binary.metrics.total_slo_attainment(),
    );
    check(
        "ladder beats binary fallback on SLO",
        ladder_slo > binary_slo,
        format!(
            "ladder {ladder_slo:.1}% vs binary {binary_slo:.1}% (greedy cycles {} vs {}, BE lat {:.0}s vs {:.0}s)",
            ladder.metrics.solver_fallbacks,
            binary.metrics.solver_fallbacks,
            ladder.metrics.be_mean_latency(),
            binary.metrics.be_mean_latency(),
        ),
    );
    check(
        "straggler defense engaged",
        ladder.metrics.stragglers_detected > 0,
        format!(
            "{} detected, {} migrated",
            ladder.metrics.stragglers_detected, ladder.metrics.speculative_migrations
        ),
    );
    failures
}

fn main() {
    let scale = FigScale::from_args();
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--check") {
        println!("== Degraded-mode chaos gate: 4x slowdown on 10% of nodes at 2x saturation ==");
        let failures = chaos_check(&scale);
        if failures > 0 {
            eprintln!("chaos gate: {failures} check(s) failed");
            std::process::exit(1);
        }
        println!("chaos gate: all checks passed");
        return;
    }
    let with_perf = args.iter().any(|a| a == "--perf-faults");
    let with_stragglers = args.iter().any(|a| a == "--stragglers");
    let stragglers = if with_stragglers {
        StragglerConfig::defaults()
    } else {
        StragglerConfig::disabled()
    };
    let cluster = scale.rc80();
    let num_nodes = cluster.num_nodes();
    println!(
        "GS HET / {num_nodes}-node RC80, {} jobs, seed {}, MTTR 60 s\n",
        scale.num_jobs, scale.seed
    );

    // MTBF sweep: infinity (healthy), then every ~2000s down to every
    // ~250s per node. At 250 s with tens of nodes the cluster loses a
    // node every few seconds of simulated time.
    let mtbfs: &[f64] = if scale.full_clusters {
        &[0.0, 4000.0, 1000.0, 250.0]
    } else {
        &[0.0, 2000.0, 500.0]
    };

    let kinds = [
        SchedulerKind::Tetri(TetriSchedConfig::default()),
        SchedulerKind::Tetri(TetriSchedConfig::no_global(
            TetriSchedConfig::default().plan_ahead,
        )),
        SchedulerKind::RayonCs,
    ];

    let mut rows = Vec::new();
    for kind in &kinds {
        for &mtbf in mtbfs {
            let reps: Vec<MetricsRow> = (0..scale.replications.max(1))
                .map(|r| {
                    let seed = scale.seed + r as u64;
                    let faults = if mtbf == 0.0 {
                        FaultPlan::none()
                    } else {
                        FaultPlan::generate(
                            num_nodes,
                            &FaultConfig {
                                seed,
                                mtbf,
                                mttr: 60.0,
                                horizon: FAULT_HORIZON,
                            },
                        )
                    };
                    let perf = if with_perf {
                        sweep_perf_faults(num_nodes, seed)
                    } else {
                        PerfFaultPlan::none()
                    };
                    let report = run_spec(&churn_spec(
                        &scale,
                        kind.clone(),
                        seed,
                        faults,
                        perf,
                        stragglers,
                    ));
                    MetricsRow::from_report(kind.name(), mtbf, &report)
                })
                .collect();
            rows.push(MetricsRow::averaged(&reps));
        }
    }
    print_figure(
        "Churn: MTBF sweep (0 = healthy cluster)",
        "MTBF s/node",
        &rows,
        &robustness_panels(),
    );
    if with_perf || with_stragglers {
        print_figure(
            "Degraded mode: perf faults / straggler defense",
            "MTBF s/node",
            &rows,
            &degraded_panels(),
        );
    }

    // Scripted correlated outage: a whole rack goes dark mid-run for 120 s.
    println!("== Correlated outage: rack 0 down [200, 320) ==");
    println!(
        "{:<16}{:>10}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "scheduler", "SLO %", "avail %", "evicted", "retries", "abandoned", "degraded"
    );
    for kind in &kinds {
        let faults = FaultPlan::from_script(
            &cluster,
            &[FaultScript {
                at: 200,
                duration: 120,
                scope: FaultScope::Rack(tetrisched_cluster::RackId(0)),
            }],
        );
        let report = run_spec(&churn_spec(
            &scale,
            kind.clone(),
            scale.seed,
            faults,
            PerfFaultPlan::none(),
            stragglers,
        ));
        let m = &report.metrics;
        println!(
            "{:<16}{:>10.1}{:>12.1}{:>12}{:>12}{:>12}{:>10}",
            kind.name(),
            m.total_slo_attainment(),
            m.availability() * 100.0,
            m.evictions,
            m.retries,
            m.abandoned_after_retries,
            m.degraded_cycles,
        );
    }
    println!(
        "\nExpectation: attainment degrades gracefully as MTBF shrinks; no \
         run panics, every evicted gang retries with backoff, and jobs are \
         abandoned only after the retry budget is spent."
    );
}
