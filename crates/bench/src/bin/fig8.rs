//! Regenerates Fig. 8 of the paper. Run with `--smoke` for a quick pass.

use tetrisched_bench::figures::{fig8, FigScale};
use tetrisched_bench::table::{print_figure, slo_panels};

fn main() {
    let scale = FigScale::from_args();
    let rows = fig8(&scale);
    print_figure("Fig. 8", "x: estimate error (%)", &rows, &slo_panels());
}
