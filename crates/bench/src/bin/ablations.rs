//! Ablations of TetriSched design choices beyond the paper's Table 2:
//!
//! - **warm starts** (Sec. 3.2.2: seeding each cycle's solve with the
//!   previous cycle's schedule is claimed "quite effective"),
//! - **batch cap** (Sec. 5: scheduling a subset of pending jobs trades
//!   quality for MILP size),
//! - **deferral tie-break** (our addition: without it, flat SLO value
//!   functions leave the solver indifferent to pointless deferral),
//! - **preemption** (the paper's stated future work, implemented here).
//!
//! Run: `cargo run --release -p tetrisched-bench --bin ablations [--smoke]`

use tetrisched_bench::figures::FigScale;
use tetrisched_bench::harness::{run_spec, RunSpec, SchedulerKind};
use tetrisched_core::TetriSchedConfig;
use tetrisched_sim::{FaultPlan, PerfFaultPlan, RetryPolicy, StragglerConfig};
use tetrisched_workloads::Workload;

fn run(label: &str, scale: &FigScale, error: f64, cfg: TetriSchedConfig) {
    let report = run_spec(&RunSpec {
        workload: Workload::GsHet,
        cluster: scale.rc80(),
        num_jobs: scale.num_jobs,
        seed: scale.seed,
        estimate_error: error,
        kind: SchedulerKind::Tetri(cfg),
        cycle_period: scale.cycle_period,
        utilization: 1.15,
        slowdown: 2.0,
        faults: FaultPlan::none(),
        retry: RetryPolicy::default(),
        perf_faults: PerfFaultPlan::none(),
        stragglers: StragglerConfig::disabled(),
    });
    let m = &report.metrics;
    println!(
        "{:<26}{:>12.1}{:>14.1}{:>16.2}{:>16.2}{:>10}",
        label,
        m.total_slo_attainment(),
        m.be_mean_latency(),
        m.solver_latency.mean() * 1e3,
        m.cycle_latency.quantile(0.99) * 1e3,
        m.preemptions,
    );
}

fn main() {
    let scale = FigScale::from_args();
    println!(
        "GS HET / RC80, {} jobs, seed {}; estimate error -20%\n",
        scale.num_jobs, scale.seed
    );
    println!(
        "{:<26}{:>12}{:>14}{:>16}{:>16}{:>10}",
        "configuration", "SLO %", "BE lat (s)", "solver avg ms", "cycle p99 ms", "preempt"
    );

    let base = TetriSchedConfig::default;

    run("full (warm, batch 16)", &scale, -0.2, base());

    let mut c = base();
    c.warm_start = false;
    run("no warm start", &scale, -0.2, c);

    let mut c = base();
    c.max_batch = 4;
    run("batch cap 4", &scale, -0.2, c);

    let mut c = base();
    c.max_batch = 64;
    run("batch cap 64", &scale, -0.2, c);

    let mut c = base();
    c.defer_tiebreak = 0.0;
    run("no deferral tie-break", &scale, -0.2, c);

    let mut c = base();
    c.preemption = true;
    run("with preemption (ext)", &scale, -0.2, c);

    let mut c = base();
    c.solver_gap = 0.0;
    run("exact solves (gap 0)", &scale, -0.2, c);

    let mut c = base();
    c.max_start_options = 3;
    run("3 start options", &scale, -0.2, c);

    let mut c = base();
    c.solver_heuristic = true;
    run("LP-dive heuristic backend", &scale, -0.2, c);
}
