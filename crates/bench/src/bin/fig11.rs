//! Regenerates Fig. 11 (plan-ahead sweep). Run with `--smoke` for a quick
//! pass.

use tetrisched_bench::figures::{fig11, FigScale};
use tetrisched_bench::table::{print_figure, slo_panels};

fn main() {
    let scale = FigScale::from_args();
    let rows = fig11(&scale);
    print_figure("Fig. 11", "x: plan-ahead (s)", &rows, &slo_panels());
}
