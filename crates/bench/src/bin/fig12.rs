//! Regenerates Fig. 12 (scheduler scalability with plan-ahead): solver and
//! cycle latencies from the Fig. 11 sweep, plus the latency CDFs of
//! Fig. 12(c). Run with `--smoke` for a quick pass.

use tetrisched_bench::figures::{fig11, fig12_cdf, FigScale};
use tetrisched_bench::table::{latency_panels, print_figure};

fn main() {
    let scale = FigScale::from_args();
    let rows = fig11(&scale);
    print_figure(
        "Fig. 12(a)/(b)",
        "x: plan-ahead (s)",
        &rows,
        &latency_panels(),
    );
    println!("== Fig. 12(c): latency CDFs at max plan-ahead ==");
    for (name, cdf) in fig12_cdf(&scale) {
        let pts: Vec<String> = [0.5, 0.9, 0.99]
            .iter()
            .map(|&q| {
                let idx = ((cdf.len() as f64 - 1.0) * q).round() as usize;
                format!(
                    "p{:.0}={:.1}ms",
                    q * 100.0,
                    cdf.get(idx).map_or(0.0, |p| p.0 * 1e3)
                )
            })
            .collect();
        println!("{name:<24} {}", pts.join("  "));
    }
}
