//! Per-figure experiment pipelines (Figs. 6–12, Tables 1–2).

use tetrisched_cluster::Cluster;
use tetrisched_core::TetriSchedConfig;
use tetrisched_sim::{FaultPlan, PerfFaultPlan, RetryPolicy, StragglerConfig};
use tetrisched_workloads::Workload;

use crate::harness::{run_spec, RunSpec, SchedulerKind};
use crate::table::MetricsRow;

/// Experiment sizing. The paper runs on physical 256/80-node clusters for
/// hours; the simulation reproduces the pipelines at a size a single core
/// handles in minutes (`paper`) or seconds (`smoke`, for benches and CI).
#[derive(Debug, Clone)]
pub struct FigScale {
    /// Jobs per run.
    pub num_jobs: usize,
    /// Workload seed.
    pub seed: u64,
    /// Whether to use the full-size clusters.
    pub full_clusters: bool,
    /// Scheduler cycle period (paper: 4 s).
    pub cycle_period: u64,
    /// Number of seeds averaged per point (seed, seed+1, ...).
    pub replications: usize,
}

impl FigScale {
    /// Full-scale runs for the `fig*` binaries.
    pub fn paper() -> FigScale {
        FigScale {
            num_jobs: 80,
            seed: 42,
            full_clusters: true,
            cycle_period: 4,
            replications: 2,
        }
    }

    /// Builds a scale from process arguments: `--smoke` selects the smoke
    /// scale; `--jobs N` and `--seed S` override sizing.
    pub fn from_args() -> FigScale {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = if args.iter().any(|a| a == "--smoke") {
            FigScale::smoke()
        } else {
            FigScale::paper()
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--jobs" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        scale.num_jobs = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        scale.seed = v;
                    }
                }
                _ => {}
            }
        }
        scale
    }

    /// Small runs for Criterion benches and tests.
    pub fn smoke() -> FigScale {
        FigScale {
            num_jobs: 14,
            seed: 42,
            full_clusters: false,
            cycle_period: 4,
            replications: 1,
        }
    }

    /// The RC256 testbed (8 racks x 32, two GPU racks), or a 32-node
    /// smoke-scale equivalent with the same rack structure.
    pub fn rc256(&self) -> Cluster {
        if self.full_clusters {
            Cluster::rc256(2)
        } else {
            Cluster::uniform(4, 8, 1)
        }
    }

    /// The RC80 testbed (8 racks x 10), or a 20-node smoke-scale
    /// equivalent. Half the racks are GPU-labeled so the GS HET mixture's
    /// GPU demand roughly matches GPU supply — the regime where waiting
    /// for preferred resources (plan-ahead) can actually pay off.
    pub fn rc80(&self) -> Cluster {
        if self.full_clusters {
            Cluster::rc80(4)
        } else {
            Cluster::uniform(4, 5, 2)
        }
    }

    fn error_grid(&self, full: &[f64], smoke: &[f64]) -> Vec<f64> {
        if self.full_clusters {
            full.to_vec()
        } else {
            smoke.to_vec()
        }
    }
}

/// Default TetriSched configuration for the experiments (plan-ahead 96 s as
/// in the Fig. 11 knee, 10% gap, bounded solver time).
fn ts_config() -> TetriSchedConfig {
    TetriSchedConfig::default()
}

/// Sweeps estimate error for a set of schedulers on one workload/cluster.
fn error_sweep(
    scale: &FigScale,
    workload: Workload,
    cluster: Cluster,
    errors: &[f64],
    kinds: &[SchedulerKind],
    utilization: f64,
    slowdown: f64,
) -> Vec<MetricsRow> {
    let mut rows = Vec::new();
    for kind in kinds {
        for &err in errors {
            let reps: Vec<MetricsRow> = (0..scale.replications.max(1))
                .map(|r| {
                    let report = run_spec(&RunSpec {
                        workload,
                        cluster: cluster.clone(),
                        num_jobs: scale.num_jobs,
                        seed: scale.seed + r as u64,
                        estimate_error: err / 100.0,
                        kind: kind.clone(),
                        cycle_period: scale.cycle_period,
                        utilization,
                        slowdown,
                        faults: FaultPlan::none(),
                        retry: RetryPolicy::default(),
                        perf_faults: PerfFaultPlan::none(),
                        stragglers: StragglerConfig::disabled(),
                    });
                    MetricsRow::from_report(kind.name(), err, &report)
                })
                .collect();
            rows.push(MetricsRow::averaged(&reps));
        }
    }
    rows
}

/// Fig. 6: GR MIX on RC256 — Rayon/TetriSched vs Rayon/CS across estimate
/// error; panels (a)–(d) of the paper.
pub fn fig6(scale: &FigScale) -> Vec<MetricsRow> {
    let errors = scale.error_grid(&[-50.0, -20.0, 0.0, 20.0, 50.0, 100.0], &[-20.0, 0.0, 50.0]);
    error_sweep(
        scale,
        Workload::GrMix,
        scale.rc256(),
        &errors,
        &[SchedulerKind::Tetri(ts_config()), SchedulerKind::RayonCs],
        1.25,
        1.5,
    )
}

/// Fig. 7: GR SLO (production-derived, SLO only) on RC256.
pub fn fig7(scale: &FigScale) -> Vec<MetricsRow> {
    let errors = scale.error_grid(&[-20.0, -10.0, 0.0, 10.0, 20.0], &[-10.0, 0.0, 10.0]);
    error_sweep(
        scale,
        Workload::GrSlo,
        scale.rc256(),
        &errors,
        &[SchedulerKind::Tetri(ts_config()), SchedulerKind::RayonCs],
        1.1,
        1.5,
    )
}

/// Fig. 8: GS MIX (synthetic homogeneous) on RC80.
pub fn fig8(scale: &FigScale) -> Vec<MetricsRow> {
    let errors = scale.error_grid(&[-50.0, -20.0, 0.0, 20.0, 50.0, 100.0], &[-20.0, 0.0, 50.0]);
    error_sweep(
        scale,
        Workload::GsMix,
        scale.rc80(),
        &errors,
        &[SchedulerKind::Tetri(ts_config()), SchedulerKind::RayonCs],
        1.15,
        1.5,
    )
}

/// Fig. 9: soft-constraint ablation — TetriSched vs TetriSched-NH vs
/// Rayon/CS on GS HET / RC80.
pub fn fig9(scale: &FigScale) -> Vec<MetricsRow> {
    let errors = scale.error_grid(&[-50.0, -20.0, 0.0, 20.0, 50.0], &[-20.0, 0.0, 20.0]);
    error_sweep(
        scale,
        Workload::GsHet,
        scale.rc80(),
        &errors,
        &[
            SchedulerKind::Tetri(ts_config()),
            SchedulerKind::Tetri(TetriSchedConfig::no_heterogeneity(ts_config().plan_ahead)),
            SchedulerKind::RayonCs,
        ],
        1.15,
        2.0,
    )
}

/// Fig. 10: global-scheduling ablation — TetriSched vs TetriSched-NG vs
/// Rayon/CS on GS HET / RC80.
pub fn fig10(scale: &FigScale) -> Vec<MetricsRow> {
    let errors = scale.error_grid(&[-50.0, -20.0, 0.0, 20.0, 50.0], &[-20.0, 0.0, 20.0]);
    error_sweep(
        scale,
        Workload::GsHet,
        scale.rc80(),
        &errors,
        &[
            SchedulerKind::Tetri(ts_config()),
            SchedulerKind::Tetri(TetriSchedConfig::no_global(ts_config().plan_ahead)),
            SchedulerKind::RayonCs,
        ],
        1.15,
        2.0,
    )
}

/// Figs. 11 & 12: plan-ahead sweep on GS HET / RC80 at zero estimate
/// error. Fig. 11 reads the SLO panels, Fig. 12 the latency panels, from
/// the same rows. Plan-ahead = 0 is the TetriSched-NP (alsched) point.
pub fn fig11(scale: &FigScale) -> Vec<MetricsRow> {
    let plan_aheads: Vec<u64> = if scale.full_clusters {
        vec![0, 44, 96, 120, 144]
    } else {
        vec![0, 16, 48]
    };
    let mut rows = Vec::new();
    for global in [true, false] {
        for &pa in &plan_aheads {
            let mut cfg = if global {
                TetriSchedConfig::full(pa)
            } else {
                TetriSchedConfig::no_global(pa)
            };
            // Keep the variant label stable across the sweep: the paper
            // plots "TetriSched" and "TetriSched-NG" as functions of
            // plan-ahead, with plan-ahead=0 being NP.
            cfg.plan_ahead = pa;
            let name = if global {
                "tetrisched"
            } else {
                "tetrisched-ng"
            };
            let reps: Vec<MetricsRow> = (0..scale.replications.max(1))
                .map(|r| {
                    let report = run_spec(&RunSpec {
                        workload: Workload::GsHet,
                        cluster: scale.rc80(),
                        num_jobs: scale.num_jobs,
                        seed: scale.seed + r as u64,
                        estimate_error: 0.0,
                        kind: SchedulerKind::Tetri(cfg.clone()),
                        cycle_period: scale.cycle_period,
                        utilization: 1.15,
                        slowdown: 2.0,
                        faults: FaultPlan::none(),
                        retry: RetryPolicy::default(),
                        perf_faults: PerfFaultPlan::none(),
                        stragglers: StragglerConfig::disabled(),
                    });
                    MetricsRow::from_report(name, pa as f64, &report)
                })
                .collect();
            rows.push(MetricsRow::averaged(&reps));
        }
    }
    // The Rayon/CS horizontal reference line.
    let reps: Vec<MetricsRow> = (0..scale.replications.max(1))
        .map(|r| {
            let report = run_spec(&RunSpec {
                workload: Workload::GsHet,
                cluster: scale.rc80(),
                num_jobs: scale.num_jobs,
                seed: scale.seed + r as u64,
                estimate_error: 0.0,
                kind: SchedulerKind::RayonCs,
                cycle_period: scale.cycle_period,
                utilization: 1.15,
                slowdown: 2.0,
                faults: FaultPlan::none(),
                retry: RetryPolicy::default(),
                perf_faults: PerfFaultPlan::none(),
                stragglers: StragglerConfig::disabled(),
            });
            MetricsRow::from_report("rayon-cs", 0.0, &report)
        })
        .collect();
    let cs = MetricsRow::averaged(&reps);
    for &pa in &plan_aheads {
        let mut row = cs.clone();
        row.x = pa as f64;
        rows.push(row);
    }
    rows
}

/// Fig. 12(c): cycle/solver latency CDFs at the largest plan-ahead, for
/// the global and greedy policies.
pub fn fig12_cdf(scale: &FigScale) -> Vec<(String, Vec<(f64, f64)>)> {
    let pa = if scale.full_clusters { 144 } else { 48 };
    let mut out = Vec::new();
    for (name, cfg) in [
        ("tetrisched", TetriSchedConfig::full(pa)),
        ("tetrisched-ng", TetriSchedConfig::no_global(pa)),
    ] {
        let report = run_spec(&RunSpec {
            workload: Workload::GsHet,
            cluster: scale.rc80(),
            num_jobs: scale.num_jobs,
            seed: scale.seed,
            estimate_error: 0.0,
            kind: SchedulerKind::Tetri(cfg),
            cycle_period: scale.cycle_period,
            utilization: 1.15,
            slowdown: 2.0,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            perf_faults: PerfFaultPlan::none(),
            stragglers: StragglerConfig::disabled(),
        });
        out.push((format!("{name} cycle"), report.metrics.cycle_latency.cdf()));
        out.push((
            format!("{name} solver"),
            report.metrics.solver_latency.cdf(),
        ));
    }
    out
}

/// Prints Tables 1 and 2 plus the Fig. 5 value-function constants.
pub fn print_tables() {
    println!("== Table 1: workload compositions ==");
    println!(
        "{:<10}{:>6}{:>6}{:>16}{:>6}{:>6}",
        "Workload", "SLO", "BE", "Unconstrained", "GPU", "MPI"
    );
    for w in [
        Workload::GrSlo,
        Workload::GrMix,
        Workload::GsMix,
        Workload::GsHet,
    ] {
        let c = w.composition();
        println!(
            "{:<10}{:>5.0}%{:>5.0}%{:>15.0}%{:>5.0}%{:>5.0}%",
            w.name(),
            c.slo * 100.0,
            c.be * 100.0,
            c.unconstrained * 100.0,
            c.gpu * 100.0,
            c.mpi * 100.0
        );
    }
    println!();
    println!("== Table 2: TetriSched configurations ==");
    for (name, desc) in [
        ("TetriSched", "all features"),
        (
            "TetriSched-NH",
            "no heterogeneity (soft constraint) awareness",
        ),
        (
            "TetriSched-NG",
            "no global scheduling (greedy, 3 priority FIFOs)",
        ),
        ("TetriSched-NP", "no plan-ahead (alsched-equivalent)"),
    ] {
        println!("{name:<16} {desc}");
    }
    println!();
    println!("== Fig. 5: internal value functions ==");
    println!(
        "accepted SLO: {}v until deadline; SLO w/o reservation: {}v; \
         best-effort: {}v linear decay",
        tetrisched_strl::SLO_ACCEPTED_FACTOR,
        tetrisched_strl::SLO_NO_RESERVATION_FACTOR,
        tetrisched_strl::BE_BASE_VALUE,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig11_has_all_series() {
        let rows = fig11(&FigScale {
            num_jobs: 8,
            ..FigScale::smoke()
        });
        let schedulers: std::collections::HashSet<_> =
            rows.iter().map(|r| r.scheduler.as_str()).collect();
        assert!(schedulers.contains("tetrisched"));
        assert!(schedulers.contains("tetrisched-ng"));
        assert!(schedulers.contains("rayon-cs"));
    }

    #[test]
    fn tables_print() {
        print_tables();
    }
}
