//! Single-run experiment execution.

use tetrisched_baseline::CapacityScheduler;
use tetrisched_cluster::Cluster;
use tetrisched_core::{TetriSched, TetriSchedConfig};
use tetrisched_sim::{
    FaultPlan, PerfFaultPlan, RetryPolicy, SimConfig, SimReport, Simulator, StragglerConfig,
    TelemetryConfig,
};
use tetrisched_workloads::{GridmixConfig, Workload, WorkloadBuilder};

/// Which scheduler stack to run.
#[derive(Debug, Clone)]
pub enum SchedulerKind {
    /// Rayon/TetriSched in some Table 2 configuration.
    Tetri(TetriSchedConfig),
    /// The Rayon/CapacityScheduler baseline.
    RayonCs,
}

impl SchedulerKind {
    /// Display name for result rows.
    pub fn name(&self) -> String {
        match self {
            SchedulerKind::Tetri(c) => c.variant_name().to_string(),
            SchedulerKind::RayonCs => "rayon-cs".to_string(),
        }
    }
}

/// A fully specified experiment run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Table 1 workload.
    pub workload: Workload,
    /// Cluster topology.
    pub cluster: Cluster,
    /// Number of jobs.
    pub num_jobs: usize,
    /// Workload seed.
    pub seed: u64,
    /// Runtime estimate error applied to every job.
    pub estimate_error: f64,
    /// Scheduler under test.
    pub kind: SchedulerKind,
    /// Scheduler cycle period (paper: 4 s).
    pub cycle_period: u64,
    /// Offered load as a fraction of cluster capacity (the paper runs
    /// "near 100%"; values above 1.0 create sustained queueing pressure).
    pub utilization: f64,
    /// Slowdown multiplier on non-preferred placements for GPU/MPI jobs.
    pub slowdown: f64,
    /// Node fault plan injected into the run (`FaultPlan::none()` for a
    /// healthy cluster, as in all paper experiments).
    pub faults: FaultPlan,
    /// Backoff/budget policy for gangs evicted by node failures.
    pub retry: RetryPolicy,
    /// Performance-fault plan: scripted or seeded slow-node / degraded-
    /// capacity windows (`PerfFaultPlan::none()` for full-speed nodes).
    pub perf_faults: PerfFaultPlan,
    /// Straggler detection and speculative migration knobs
    /// (`StragglerConfig::disabled()` reproduces pre-defense behavior).
    pub stragglers: StragglerConfig,
}

impl RunSpec {
    /// Paper-default knobs: near-saturated load, Fig. 1's 1.5x slowdown.
    pub fn defaults() -> (f64, f64) {
        (1.0, 1.5)
    }

    /// A healthy-cluster fault configuration: no failures, default
    /// retry policy. Spread over the paper experiment `RunSpec`s so churn
    /// experiments can opt in without touching every figure pipeline.
    pub fn no_faults() -> (FaultPlan, RetryPolicy) {
        (FaultPlan::none(), RetryPolicy::default())
    }

    /// No performance faults and no straggler defense — the degraded-mode
    /// analogue of [`RunSpec::no_faults`], used by every paper-figure
    /// pipeline so their runs reproduce pre-degraded-mode behavior
    /// byte-for-byte.
    pub fn no_degradation() -> (PerfFaultPlan, StragglerConfig) {
        (PerfFaultPlan::none(), StragglerConfig::disabled())
    }
}

/// Runs one experiment to completion and returns the report.
pub fn run_spec(spec: &RunSpec) -> SimReport {
    let builder = WorkloadBuilder::new(GridmixConfig {
        seed: spec.seed,
        num_jobs: spec.num_jobs,
        cluster_size: spec.cluster.num_nodes(),
        target_utilization: spec.utilization,
        estimate_error: 0.0,
        error_jitter: 0.0,
        slowdown: spec.slowdown,
    });
    let jobs = builder.with_estimate_error(spec.workload, spec.estimate_error);
    let sim_config = SimConfig {
        cycle_period: spec.cycle_period,
        // Generous hard stop so a pathological configuration cannot hang a
        // sweep; ordinary runs finish long before this.
        horizon: Some(1_000_000),
        trace: false,
        faults: spec.faults.clone(),
        retry: spec.retry,
        perf_faults: spec.perf_faults.clone(),
        stragglers: spec.stragglers,
        // Spans, counters, and phase wall histograms for the telemetry
        // columns of the result tables (Fig. 12-style forensics).
        telemetry: TelemetryConfig::on(),
        ..SimConfig::default()
    };
    match &spec.kind {
        SchedulerKind::Tetri(cfg) => {
            let mut cfg = cfg.clone();
            cfg.cycle_period = spec.cycle_period;
            Simulator::new(spec.cluster.clone(), TetriSched::new(cfg), sim_config).run(jobs)
        }
        SchedulerKind::RayonCs => Simulator::new(
            spec.cluster.clone(),
            CapacityScheduler::paper_default(),
            sim_config,
        )
        .run(jobs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_both_stacks() {
        for kind in [
            SchedulerKind::Tetri(TetriSchedConfig::full(16)),
            SchedulerKind::RayonCs,
        ] {
            let report = run_spec(&RunSpec {
                workload: Workload::GsMix,
                cluster: Cluster::uniform(2, 8, 1),
                num_jobs: 12,
                seed: 3,
                estimate_error: 0.0,
                kind,
                cycle_period: 4,
                utilization: 1.0,
                slowdown: 1.5,
                faults: FaultPlan::none(),
                retry: RetryPolicy::default(),
                perf_faults: PerfFaultPlan::none(),
                stragglers: StragglerConfig::disabled(),
            });
            let m = &report.metrics;
            let terminal = m.accepted_slo_total + m.nores_slo_total + m.be_total;
            assert_eq!(terminal, 12, "all jobs accounted for");
            assert_eq!(m.incomplete, 0, "everything terminal");
        }
    }

    #[test]
    fn scheduler_kind_names() {
        assert_eq!(SchedulerKind::RayonCs.name(), "rayon-cs");
        assert_eq!(
            SchedulerKind::Tetri(TetriSchedConfig::no_plan_ahead()).name(),
            "tetrisched-np"
        );
    }
}
