//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Sec. 6–7).
//!
//! Each `fig*` function in [`figures`] reruns the corresponding experiment
//! pipeline — workload generation, reservation admission, full simulation
//! under each scheduler — and returns structured rows that the binaries in
//! `src/bin/` print in the paper's series layout. A [`figures::FigScale`]
//! selects between paper-sized runs (the `fig*` binaries) and smoke-sized
//! runs (Criterion benches, CI tests).
//!
//! Absolute numbers are not expected to match a 2016 physical testbed; the
//! *shapes* are the reproduction target (see `EXPERIMENTS.md`): who wins,
//! by roughly what factor, and where the crossovers fall.

pub mod figures;
pub mod harness;
pub mod table;

pub use figures::FigScale;
pub use harness::{run_spec, RunSpec, SchedulerKind};
pub use table::{print_figure, MetricsRow};
