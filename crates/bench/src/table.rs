//! Result rows and paper-style series printing.

use tetrisched_sim::SimReport;

/// One experiment point: a scheduler at one x-axis value.
#[derive(Debug, Clone)]
pub struct MetricsRow {
    /// Scheduler name.
    pub scheduler: String,
    /// X-axis value (estimate error % or plan-ahead seconds).
    pub x: f64,
    /// Accepted-SLO attainment, %.
    pub accepted_slo: f64,
    /// Total SLO attainment, %.
    pub total_slo: f64,
    /// SLO-without-reservation attainment, %.
    pub nores_slo: f64,
    /// Mean best-effort latency, seconds.
    pub be_latency: f64,
    /// Cluster utilization, fraction.
    pub utilization: f64,
    /// Mean scheduler cycle latency, milliseconds.
    pub cycle_ms_mean: f64,
    /// 99th-percentile cycle latency, milliseconds.
    pub cycle_ms_p99: f64,
    /// Mean MILP solver latency, milliseconds.
    pub solver_ms_mean: f64,
    /// 99th-percentile solver latency, milliseconds.
    pub solver_ms_p99: f64,
    /// Preemption count.
    pub preemptions: usize,
    /// Abandoned jobs.
    pub abandoned: usize,
    /// Gangs evicted by node failures.
    pub evictions: usize,
    /// Eviction retries issued.
    pub retries: usize,
    /// Jobs abandoned after exhausting their eviction retry budget.
    pub abandoned_after_retries: usize,
    /// Cycles that fell back to the degraded (greedy) placer.
    pub solver_fallbacks: usize,
    /// Fraction of node-seconds the cluster was up, %.
    pub availability: f64,
    /// Error-severity lint rejections surfaced by cycles.
    pub lint_errors: usize,
    /// Solves settled by a presolve infeasibility certificate.
    pub lint_presolve_rejections: usize,
    /// Solver/translation certificates verified (`certify_solves` knob).
    pub certificates_verified: usize,
    /// Certificates that failed verification.
    pub certificate_failures: usize,
    /// Solves whose warm start was accepted as the incumbent.
    pub warm_start_hits: usize,
    /// Presolve reductions (rows dropped + bounds tightened) across all
    /// solves.
    pub presolve_reductions: usize,
    /// Trace events dropped by the bounded ring buffer.
    pub trace_events_dropped: u64,
    /// 99th-percentile MILP solve phase wall time, milliseconds, from the
    /// telemetry wall histograms (zero when telemetry was disabled).
    pub phase_solve_ms_p99: f64,
    /// Nodes that entered at least one performance-fault window.
    pub perf_faulted_nodes: u64,
    /// Straggler tasks flagged by the progress-watermark detector.
    pub stragglers_detected: u64,
    /// Speculative straggler migrations actually issued.
    pub speculative_migrations: u64,
    /// Deepest degradation-ladder rung reached (0 = full MILP).
    pub ladder_rung: u64,
    /// Budget-expired anytime solves that still returned an incumbent.
    pub anytime_incumbents: u64,
    /// Jobs the service core admitted to the scheduler.
    pub jobs_admitted: u64,
    /// Jobs the service core shed (overflow or depth bound).
    pub jobs_shed: u64,
    /// Cumulative job-cycles arrivals spent deferred on intake shards.
    pub jobs_deferred: u64,
}

impl MetricsRow {
    /// Builds a row from a finished run.
    pub fn from_report(scheduler: impl Into<String>, x: f64, report: &SimReport) -> MetricsRow {
        let m = &report.metrics;
        MetricsRow {
            scheduler: scheduler.into(),
            x,
            accepted_slo: m.accepted_slo_attainment(),
            total_slo: m.total_slo_attainment(),
            nores_slo: m.nores_slo_attainment(),
            be_latency: m.be_mean_latency(),
            utilization: m.utilization(),
            cycle_ms_mean: m.cycle_latency.mean() * 1e3,
            cycle_ms_p99: m.cycle_latency.quantile(0.99) * 1e3,
            solver_ms_mean: m.solver_latency.mean() * 1e3,
            solver_ms_p99: m.solver_latency.quantile(0.99) * 1e3,
            preemptions: m.preemptions,
            abandoned: m.abandoned,
            evictions: m.evictions,
            retries: m.retries,
            abandoned_after_retries: m.abandoned_after_retries,
            solver_fallbacks: m.solver_fallbacks,
            availability: m.availability() * 100.0,
            lint_errors: m.lint_errors,
            lint_presolve_rejections: m.lint_presolve_rejections,
            certificates_verified: m.certificates_verified,
            certificate_failures: m.certificate_failures,
            warm_start_hits: m.warm_start_hits,
            presolve_reductions: m.presolve_reductions,
            trace_events_dropped: m.trace_events_dropped,
            phase_solve_ms_p99: report
                .telemetry
                .wall_hist("phase.solve_secs")
                .map_or(0.0, |h| h.quantile(0.99) * 1e3),
            perf_faulted_nodes: m.perf_faulted_nodes,
            stragglers_detected: m.stragglers_detected,
            speculative_migrations: m.speculative_migrations,
            ladder_rung: m.ladder_rung,
            anytime_incumbents: m.anytime_incumbents,
            jobs_admitted: m.jobs_admitted,
            jobs_shed: m.jobs_shed,
            jobs_deferred: m.jobs_deferred,
        }
    }
}

impl MetricsRow {
    /// Pointwise average of several replications of the same experiment
    /// point (same scheduler and x across all rows).
    ///
    /// # Panics
    ///
    /// Panics when `rows` is empty.
    pub fn averaged(rows: &[MetricsRow]) -> MetricsRow {
        assert!(!rows.is_empty(), "cannot average zero rows");
        let n = rows.len() as f64;
        let avg = |f: fn(&MetricsRow) -> f64| rows.iter().map(f).sum::<f64>() / n;
        MetricsRow {
            scheduler: rows[0].scheduler.clone(),
            x: rows[0].x,
            accepted_slo: avg(|r| r.accepted_slo),
            total_slo: avg(|r| r.total_slo),
            nores_slo: avg(|r| r.nores_slo),
            be_latency: avg(|r| r.be_latency),
            utilization: avg(|r| r.utilization),
            cycle_ms_mean: avg(|r| r.cycle_ms_mean),
            cycle_ms_p99: avg(|r| r.cycle_ms_p99),
            solver_ms_mean: avg(|r| r.solver_ms_mean),
            solver_ms_p99: avg(|r| r.solver_ms_p99),
            preemptions: rows.iter().map(|r| r.preemptions).sum::<usize>() / rows.len(),
            abandoned: rows.iter().map(|r| r.abandoned).sum::<usize>() / rows.len(),
            evictions: rows.iter().map(|r| r.evictions).sum::<usize>() / rows.len(),
            retries: rows.iter().map(|r| r.retries).sum::<usize>() / rows.len(),
            abandoned_after_retries: rows
                .iter()
                .map(|r| r.abandoned_after_retries)
                .sum::<usize>()
                / rows.len(),
            solver_fallbacks: rows.iter().map(|r| r.solver_fallbacks).sum::<usize>() / rows.len(),
            availability: avg(|r| r.availability),
            lint_errors: rows.iter().map(|r| r.lint_errors).sum::<usize>() / rows.len(),
            lint_presolve_rejections: rows
                .iter()
                .map(|r| r.lint_presolve_rejections)
                .sum::<usize>()
                / rows.len(),
            certificates_verified: rows.iter().map(|r| r.certificates_verified).sum::<usize>()
                / rows.len(),
            certificate_failures: rows.iter().map(|r| r.certificate_failures).sum::<usize>()
                / rows.len(),
            warm_start_hits: rows.iter().map(|r| r.warm_start_hits).sum::<usize>() / rows.len(),
            presolve_reductions: rows.iter().map(|r| r.presolve_reductions).sum::<usize>()
                / rows.len(),
            trace_events_dropped: rows.iter().map(|r| r.trace_events_dropped).sum::<u64>()
                / rows.len() as u64,
            phase_solve_ms_p99: avg(|r| r.phase_solve_ms_p99),
            perf_faulted_nodes: rows.iter().map(|r| r.perf_faulted_nodes).sum::<u64>()
                / rows.len() as u64,
            stragglers_detected: rows.iter().map(|r| r.stragglers_detected).sum::<u64>()
                / rows.len() as u64,
            speculative_migrations: rows.iter().map(|r| r.speculative_migrations).sum::<u64>()
                / rows.len() as u64,
            // The deepest rung any replication reached, not the average: a
            // single replication hitting the greedy floor is the signal.
            ladder_rung: rows.iter().map(|r| r.ladder_rung).max().unwrap_or(0),
            anytime_incumbents: rows.iter().map(|r| r.anytime_incumbents).sum::<u64>()
                / rows.len() as u64,
            jobs_admitted: rows.iter().map(|r| r.jobs_admitted).sum::<u64>() / rows.len() as u64,
            jobs_shed: rows.iter().map(|r| r.jobs_shed).sum::<u64>() / rows.len() as u64,
            jobs_deferred: rows.iter().map(|r| r.jobs_deferred).sum::<u64>() / rows.len() as u64,
        }
    }
}

/// A named metric extractor: one panel of a figure.
pub type Panel = (&'static str, fn(&MetricsRow) -> f64);

/// Prints a figure's rows as aligned per-scheduler series, one block per
/// metric panel — the same layout as the paper's figure panels.
pub fn print_figure(title: &str, x_label: &str, rows: &[MetricsRow], panels: &[Panel]) {
    println!("== {title} ==");
    let mut schedulers: Vec<String> = Vec::new();
    let mut xs: Vec<f64> = Vec::new();
    for r in rows {
        if !schedulers.contains(&r.scheduler) {
            schedulers.push(r.scheduler.clone());
        }
        if !xs.contains(&r.x) {
            xs.push(r.x);
        }
    }
    for (panel, f) in panels {
        println!("-- {panel} --");
        print!("{:<16}", x_label);
        for x in &xs {
            print!("{x:>10.1}");
        }
        println!();
        for s in &schedulers {
            print!("{s:<16}");
            for x in &xs {
                match rows.iter().find(|r| &r.scheduler == s && r.x == *x) {
                    Some(r) => print!("{:>10.1}", f(r)),
                    None => print!("{:>10}", "-"),
                }
            }
            println!();
        }
    }
    println!();
}

/// The four standard panels of the estimate-error figures (Figs. 6–10).
pub fn slo_panels() -> Vec<Panel> {
    vec![
        ("SLO attainment, all SLO jobs (%)", |r| r.total_slo),
        ("SLO attainment, accepted (with reservation) (%)", |r| {
            r.accepted_slo
        }),
        ("SLO attainment, w/o reservation (%)", |r| r.nores_slo),
        ("Best-effort mean latency (s)", |r| r.be_latency),
    ]
}

/// The latency panels of Fig. 12.
pub fn latency_panels() -> Vec<Panel> {
    vec![
        ("solver latency mean (ms)", |r| r.solver_ms_mean),
        ("solver latency p99 (ms)", |r| r.solver_ms_p99),
        ("cycle latency mean (ms)", |r| r.cycle_ms_mean),
        ("cycle latency p99 (ms)", |r| r.cycle_ms_p99),
    ]
}

/// Robustness panels for the churn experiments (beyond the paper, which
/// evaluates healthy clusters only).
pub fn robustness_panels() -> Vec<Panel> {
    vec![
        ("SLO attainment, all SLO jobs (%)", |r| r.total_slo),
        ("cluster availability (%)", |r| r.availability),
        ("evictions", |r| r.evictions as f64),
        ("eviction retries", |r| r.retries as f64),
        ("abandoned after retries", |r| {
            r.abandoned_after_retries as f64
        }),
        ("degraded cycles (solver fallbacks)", |r| {
            r.solver_fallbacks as f64
        }),
    ]
}

/// Degraded-mode panels: perf faults, straggler defense, and the anytime
/// degradation ladder (this repo's robustness extensions to the paper).
pub fn degraded_panels() -> Vec<Panel> {
    vec![
        ("SLO attainment, all SLO jobs (%)", |r| r.total_slo),
        ("perf-faulted nodes", |r| r.perf_faulted_nodes as f64),
        ("stragglers detected", |r| r.stragglers_detected as f64),
        ("speculative migrations", |r| {
            r.speculative_migrations as f64
        }),
        ("deepest ladder rung", |r| r.ladder_rung as f64),
        ("anytime incumbents", |r| r.anytime_incumbents as f64),
    ]
}

/// Service-core panels: admission/backpressure accounting for open-loop
/// service-mode experiments (beyond the paper's closed-loop evaluation).
pub fn service_panels() -> Vec<Panel> {
    vec![
        ("jobs admitted", |r| r.jobs_admitted as f64),
        ("jobs shed", |r| r.jobs_shed as f64),
        ("deferred job-cycles", |r| r.jobs_deferred as f64),
        ("SLO attainment, all SLO jobs (%)", |r| r.total_slo),
    ]
}

/// Telemetry forensics panels: solver-internals and instrumentation-health
/// counters surfaced by the tracing layer (beyond the paper's figures).
pub fn telemetry_panels() -> Vec<Panel> {
    vec![
        ("warm-start hits", |r| r.warm_start_hits as f64),
        ("presolve reductions", |r| r.presolve_reductions as f64),
        ("trace events dropped", |r| r.trace_events_dropped as f64),
        ("solve phase p99 (ms)", |r| r.phase_solve_ms_p99),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(s: &str, x: f64, v: f64) -> MetricsRow {
        MetricsRow {
            scheduler: s.into(),
            x,
            accepted_slo: v,
            total_slo: v,
            nores_slo: v,
            be_latency: v,
            utilization: 0.5,
            cycle_ms_mean: 1.0,
            cycle_ms_p99: 2.0,
            solver_ms_mean: 0.5,
            solver_ms_p99: 1.0,
            preemptions: 0,
            abandoned: 0,
            evictions: 0,
            retries: 0,
            abandoned_after_retries: 0,
            solver_fallbacks: 0,
            availability: 100.0,
            lint_errors: 0,
            lint_presolve_rejections: 0,
            certificates_verified: 0,
            certificate_failures: 0,
            warm_start_hits: 0,
            presolve_reductions: 0,
            trace_events_dropped: 0,
            phase_solve_ms_p99: 0.0,
            perf_faulted_nodes: 0,
            stragglers_detected: 0,
            speculative_migrations: 0,
            ladder_rung: 0,
            anytime_incumbents: 0,
            jobs_admitted: 0,
            jobs_shed: 0,
            jobs_deferred: 0,
        }
    }

    #[test]
    fn print_figure_does_not_panic_on_sparse_grid() {
        let rows = vec![row("a", 0.0, 1.0), row("a", 1.0, 2.0), row("b", 0.0, 3.0)];
        print_figure("test", "x", &rows, &slo_panels());
    }

    #[test]
    fn panels_extract_metrics() {
        let r = row("a", 0.0, 42.0);
        assert_eq!(slo_panels()[0].1(&r), 42.0);
        assert_eq!(latency_panels()[0].1(&r), 0.5);
    }
}
