//! Criterion microbenches for the MILP substrate: solver scaling with
//! plan-ahead window size (the driver of Fig. 12) plus compiler and
//! partition-refinement costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tetrisched_cluster::{Cluster, NodeSet, PartitionSet};
use tetrisched_core::{compile, CompileInput};
use tetrisched_milp::SolverConfig;
use tetrisched_strl::StrlExpr;

/// Builds the global expression for `jobs` GPU-style jobs with
/// `starts` candidate start times each on an 80-node cluster.
fn build_case(jobs: usize, starts: usize) -> (StrlExpr, PartitionSet, usize) {
    let cluster = Cluster::rc80(2);
    let gpus = cluster.nodes_with_attr(&tetrisched_cluster::Attr::gpu());
    let all = cluster.all_nodes();
    let mut children = Vec::new();
    for j in 0..jobs {
        let mut options = Vec::new();
        for s in 0..starts {
            let start = (s as u64) * 4;
            options.push(StrlExpr::nck(
                gpus.clone(),
                2 + (j % 3) as u32,
                start,
                40,
                10.0,
            ));
            options.push(StrlExpr::nck(
                all.clone(),
                2 + (j % 3) as u32,
                start,
                60,
                8.0,
            ));
        }
        children.push(StrlExpr::Max(options));
    }
    let expr = StrlExpr::Sum(children);
    let partitions = PartitionSet::refine(80, &[gpus, all]);
    (expr, partitions, starts)
}

fn bench_solver_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver_plan_ahead_scaling");
    g.sample_size(10);
    for &starts in &[1usize, 4, 8, 12] {
        g.bench_with_input(
            BenchmarkId::from_parameter(starts),
            &starts,
            |b, &starts| {
                let (expr, partitions, _) = build_case(8, starts);
                let input = CompileInput {
                    expr: &expr,
                    partitions: &partitions,
                    now: 0,
                    quantum: 4,
                    n_slices: starts + 10,
                };
                b.iter(|| {
                    let compiled = compile(&input, &|s: &NodeSet, _| s.len()).unwrap();
                    let sol = compiled
                        .model
                        .solve(&SolverConfig::online(std::time::Duration::from_millis(300)))
                        .unwrap();
                    black_box(sol.objective)
                });
            },
        );
    }
    g.finish();
}

fn bench_compile_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("strl_compile");
    g.sample_size(20);
    let (expr, partitions, _) = build_case(16, 8);
    let input = CompileInput {
        expr: &expr,
        partitions: &partitions,
        now: 0,
        quantum: 4,
        n_slices: 18,
    };
    g.bench_function("compile_16jobs_8starts", |b| {
        b.iter(|| {
            black_box(
                compile(&input, &|s: &NodeSet, _| s.len())
                    .unwrap()
                    .model
                    .num_vars(),
            )
        })
    });
    g.finish();
}

fn bench_partition_refinement(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition_refinement");
    g.sample_size(20);
    let cluster = Cluster::rc256(2);
    let mut sets = vec![
        cluster.all_nodes(),
        cluster.nodes_with_attr(&tetrisched_cluster::Attr::gpu()),
    ];
    for r in 0..cluster.num_racks() {
        sets.push(
            cluster
                .rack_nodes(tetrisched_cluster::RackId(r as u32))
                .clone(),
        );
    }
    g.bench_function("refine_rc256_racks_and_gpu", |b| {
        b.iter(|| black_box(PartitionSet::refine(256, &sets).len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_solver_scaling,
    bench_compile_only,
    bench_partition_refinement
);
criterion_main!(benches);
