//! Service-core performance baseline (`BENCH_8.json`).
//!
//! Six headline numbers, measured on the vendored criterion stub:
//!
//! - **cycles/sec** — closed-loop simulated scheduler cycles completed per
//!   wall second (whole-engine throughput including STRL generation,
//!   compile, solve, and decode);
//! - **p99 solve latency (ms)** — tail wall-clock MILP solve time within
//!   that run (the paper's Fig. 12(a) axis);
//! - **intake throughput (jobs/sec)** — arrivals the sharded service core
//!   can ingest and drain per wall second, isolated from the scheduler;
//! - **degraded cycle p99 (ms)** — tail *simulated* cycle latency of the
//!   same closed-loop run under scripted slow nodes with the straggler
//!   defense and the degradation ladder enabled;
//! - **srclint ms / tokens-per-sec** — wall time and lexing throughput of
//!   a full `srclint` workspace scan (`L001`–`L011`), the CI semantic-lint
//!   job's runtime-budget guardrail.
//!
//! The intake figure was audited after `BENCH_6.json` reported ~89M
//! jobs/sec: the arithmetic was sound (10k jobs over a ~112 µs mean is
//! ~89M/s for an in-memory shard drain), but the conversion divided by a
//! raw `as_secs_f64()` that silently produces `inf` when a fast machine
//! drives the mean below timer resolution. The conversion is now guarded
//! and the per-job cost in nanoseconds is reported alongside, which is the
//! number that actually survives machine changes.
//!
//! The harness writes `BENCH_8.json` at the workspace root so the perf
//! trajectory has a committed baseline to diff against. Absolute numbers
//! are machine-dependent; the file records shape and order of magnitude.

use criterion::{BenchResult, Criterion};
use std::hint::black_box;
use tetrisched_bench::{run_spec, RunSpec, SchedulerKind};
use tetrisched_cluster::{Cluster, NodeId};
use tetrisched_core::{GovernorConfig, TetriSchedConfig};
use tetrisched_service::{
    AdmissionPolicy, FairShareConfig, ServiceConfig, ServiceCore, ServiceJob,
};
use tetrisched_sim::{
    FaultPlan, FaultScope, PerfFaultKind, PerfFaultPlan, PerfFaultScript, RetryPolicy, SimReport,
    StragglerConfig,
};
use tetrisched_workloads::Workload;

#[derive(Debug, Clone, Copy)]
struct BenchJob(u64);

impl ServiceJob for BenchJob {
    fn service_id(&self) -> u64 {
        self.0
    }
}

/// The smoke-sized closed-loop run timed for cycles/sec: same shape as the
/// e2e equivalence corpus so the number tracks the code path users of the
/// engine actually exercise.
fn cycle_spec() -> RunSpec {
    RunSpec {
        workload: Workload::GsMix,
        cluster: Cluster::uniform(2, 8, 1),
        num_jobs: 24,
        seed: 3,
        estimate_error: 0.0,
        kind: SchedulerKind::Tetri(TetriSchedConfig::full(16)),
        cycle_period: 4,
        utilization: 1.0,
        slowdown: 1.5,
        faults: FaultPlan::none(),
        retry: RetryPolicy::default(),
        perf_faults: PerfFaultPlan::none(),
        stragglers: StragglerConfig::disabled(),
    }
}

/// The same run under degraded operation: two nodes (12.5% of RC16) run
/// 4x slow for a long mid-run window, the straggler defense may migrate
/// victims, and the governor is allowed to walk the anytime ladder.
fn degraded_spec() -> RunSpec {
    let cluster = Cluster::uniform(2, 8, 1);
    let perf_faults = PerfFaultPlan::from_script(
        &cluster,
        &[PerfFaultScript {
            at: 40,
            duration: 400,
            scope: FaultScope::Nodes(vec![NodeId(0), NodeId(8)]),
            kind: PerfFaultKind::SlowNode { factor: 4.0 },
            announced: false,
        }],
    );
    let mut cfg = TetriSchedConfig::full(16);
    cfg.governor = GovernorConfig::defaults();
    // The default budget is sized for paper-scale clusters; tighten it so
    // the RC16 smoke run actually exercises the ladder and the committed
    // baseline records a nonzero rung.
    cfg.governor.work_budget = 200;
    RunSpec {
        kind: SchedulerKind::Tetri(cfg),
        perf_faults,
        stragglers: StragglerConfig::defaults(),
        ..cycle_spec()
    }
}

/// Jobs pushed through the service core per intake-bench iteration.
const INTAKE_JOBS: u64 = 10_000;

fn bench_cycles(c: &mut Criterion) -> SimReport {
    let spec = cycle_spec();
    let mut g = c.benchmark_group("service_core");
    g.sample_size(5);
    g.bench_function("closed_loop_run", |b| b.iter(|| black_box(run_spec(&spec))));
    g.finish();
    // One more deterministic run outside the timer for the cycle count and
    // the solve-latency distribution.
    run_spec(&spec)
}

fn bench_degraded(c: &mut Criterion) -> SimReport {
    let spec = degraded_spec();
    let mut g = c.benchmark_group("service_core");
    g.sample_size(3);
    g.bench_function("degraded_run", |b| b.iter(|| black_box(run_spec(&spec))));
    g.finish();
    run_spec(&spec)
}

fn bench_intake(c: &mut Criterion) {
    let service = ServiceConfig::open(
        4,
        256,
        AdmissionPolicy {
            max_admissions_per_cycle: 64,
            max_scheduler_backlog: usize::MAX,
            shed_queue_depth: usize::MAX,
        },
        FairShareConfig::disabled(),
    );
    let mut g = c.benchmark_group("service_core");
    g.sample_size(10);
    g.bench_function("intake_10k", |b| {
        b.iter(|| {
            let mut core: ServiceCore<BenchJob> = ServiceCore::new(service.clone());
            let mut drained = 0u64;
            for id in 0..INTAKE_JOBS {
                black_box(core.ingest(BenchJob(id)));
                // Drain in admission-sized batches as the engine would.
                if id % 64 == 63 {
                    drained += core.drain_cycle(0).admitted.len() as u64;
                }
            }
            while core.backlog() > 0 {
                drained += core.drain_cycle(0).admitted.len() as u64;
            }
            core.validate().expect("bench accounting");
            black_box(drained)
        })
    });
    g.finish();
}

/// Times a full `srclint` workspace scan and returns the token count of
/// the scanned tree (the numerator of the tokens/sec figure).
fn bench_srclint(c: &mut Criterion) -> usize {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/bench")
        .to_path_buf();
    let mut g = c.benchmark_group("service_core");
    g.sample_size(10);
    let scan_root = root.clone();
    g.bench_function("srclint_workspace", |b| {
        b.iter(|| black_box(lint::lint_workspace(&scan_root).expect("scan")))
    });
    g.finish();
    let report = lint::lint_workspace(&root).expect("scan");
    assert!(
        report.diagnostics.is_empty(),
        "srclint must be clean when the baseline is recorded"
    );
    report.tokens_scanned
}

fn mean_ns(results: &[BenchResult], id: &str) -> u128 {
    results
        .iter()
        .find(|r| r.id == id)
        .map(|r| r.mean.as_nanos())
        .expect("benchmark did not record a result")
}

/// `count` events over a mean of `ns` nanoseconds, as events/sec. Guarded
/// so a sub-resolution mean (0 ns on a coarse timer) reports 0 rather
/// than `inf` leaking into the committed baseline.
fn per_sec(count: f64, ns: u128) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    count * 1e9 / ns as f64
}

fn main() {
    let mut c = Criterion::default();
    let report = bench_cycles(&mut c);
    let degraded = bench_degraded(&mut c);
    bench_intake(&mut c);
    let srclint_tokens = bench_srclint(&mut c);

    let cycles = report.metrics.cycle_latency.count() as f64;
    let cycles_per_sec = per_sec(cycles, mean_ns(c.results(), "closed_loop_run"));
    let p99_solve_ms = report.metrics.solver_latency.quantile(0.99) * 1000.0;
    let intake_ns = mean_ns(c.results(), "intake_10k");
    let intake_throughput = per_sec(INTAKE_JOBS as f64, intake_ns);
    let intake_per_job_ns = intake_ns as f64 / INTAKE_JOBS as f64;
    // Simulated (not wall-clock) tail cycle latency under degradation,
    // plus the rung trajectory so regressions in ladder engagement show
    // up in the committed baseline.
    let degraded_p99_ms = degraded.metrics.cycle_latency.quantile(0.99) * 1000.0;
    let degraded_rung = degraded.metrics.ladder_rung;
    let srclint_ns = mean_ns(c.results(), "srclint_workspace");
    let srclint_ms = srclint_ns as f64 / 1e6;
    let srclint_tokens_per_sec = per_sec(srclint_tokens as f64, srclint_ns);

    let mut samples = String::new();
    for r in c.results() {
        if !samples.is_empty() {
            samples.push_str(",\n");
        }
        samples.push_str(&format!(
            "    {{\"group\": \"{}\", \"id\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}}}",
            r.group,
            r.id,
            r.mean.as_nanos(),
            r.min.as_nanos()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"BENCH_8\",\n  \"schema\": 3,\n  \
         \"cycles_per_sec\": {cycles_per_sec:.2},\n  \
         \"p99_solve_latency_ms\": {p99_solve_ms:.3},\n  \
         \"intake_throughput_jobs_per_sec\": {intake_throughput:.0},\n  \
         \"intake_per_job_ns\": {intake_per_job_ns:.1},\n  \
         \"degraded_cycle_p99_ms\": {degraded_p99_ms:.3},\n  \
         \"degraded_max_ladder_rung\": {degraded_rung},\n  \
         \"srclint_ms\": {srclint_ms:.1},\n  \
         \"srclint_tokens_per_sec\": {srclint_tokens_per_sec:.0},\n  \
         \"cycles_timed\": {cycles},\n  \
         \"samples\": [\n{samples}\n  ]\n}}\n"
    );

    // CARGO_MANIFEST_DIR is crates/bench; the baseline lives at the
    // workspace root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/bench");
    let out = root.join("BENCH_8.json");
    std::fs::write(&out, &json).expect("write BENCH_8.json");
    println!("wrote {}", out.display());
    print!("{json}");
}
