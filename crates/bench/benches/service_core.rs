//! Service-core performance baseline (`BENCH_6.json`).
//!
//! Three headline numbers, measured on the vendored criterion stub:
//!
//! - **cycles/sec** — closed-loop simulated scheduler cycles completed per
//!   wall second (whole-engine throughput including STRL generation,
//!   compile, solve, and decode);
//! - **p99 solve latency (ms)** — tail wall-clock MILP solve time within
//!   that run (the paper's Fig. 12(a) axis);
//! - **intake throughput (jobs/sec)** — arrivals the sharded service core
//!   can ingest and drain per wall second, isolated from the scheduler.
//!
//! The harness writes `BENCH_6.json` at the workspace root so the perf
//! trajectory has a committed baseline to diff against. Absolute numbers
//! are machine-dependent; the file records shape and order of magnitude.

use criterion::{BenchResult, Criterion};
use std::hint::black_box;
use tetrisched_bench::{run_spec, RunSpec, SchedulerKind};
use tetrisched_cluster::Cluster;
use tetrisched_core::TetriSchedConfig;
use tetrisched_service::{
    AdmissionPolicy, FairShareConfig, ServiceConfig, ServiceCore, ServiceJob,
};
use tetrisched_sim::{FaultPlan, RetryPolicy, SimReport};
use tetrisched_workloads::Workload;

#[derive(Debug, Clone, Copy)]
struct BenchJob(u64);

impl ServiceJob for BenchJob {
    fn service_id(&self) -> u64 {
        self.0
    }
}

/// The smoke-sized closed-loop run timed for cycles/sec: same shape as the
/// e2e equivalence corpus so the number tracks the code path users of the
/// engine actually exercise.
fn cycle_spec() -> RunSpec {
    RunSpec {
        workload: Workload::GsMix,
        cluster: Cluster::uniform(2, 8, 1),
        num_jobs: 24,
        seed: 3,
        estimate_error: 0.0,
        kind: SchedulerKind::Tetri(TetriSchedConfig::full(16)),
        cycle_period: 4,
        utilization: 1.0,
        slowdown: 1.5,
        faults: FaultPlan::none(),
        retry: RetryPolicy::default(),
    }
}

/// Jobs pushed through the service core per intake-bench iteration.
const INTAKE_JOBS: u64 = 10_000;

fn bench_cycles(c: &mut Criterion) -> SimReport {
    let spec = cycle_spec();
    let mut g = c.benchmark_group("service_core");
    g.sample_size(5);
    g.bench_function("closed_loop_run", |b| b.iter(|| black_box(run_spec(&spec))));
    g.finish();
    // One more deterministic run outside the timer for the cycle count and
    // the solve-latency distribution.
    run_spec(&spec)
}

fn bench_intake(c: &mut Criterion) {
    let service = ServiceConfig::open(
        4,
        256,
        AdmissionPolicy {
            max_admissions_per_cycle: 64,
            max_scheduler_backlog: usize::MAX,
            shed_queue_depth: usize::MAX,
        },
        FairShareConfig::disabled(),
    );
    let mut g = c.benchmark_group("service_core");
    g.sample_size(10);
    g.bench_function("intake_10k", |b| {
        b.iter(|| {
            let mut core: ServiceCore<BenchJob> = ServiceCore::new(service.clone());
            let mut drained = 0u64;
            for id in 0..INTAKE_JOBS {
                black_box(core.ingest(BenchJob(id)));
                // Drain in admission-sized batches as the engine would.
                if id % 64 == 63 {
                    drained += core.drain_cycle(0).admitted.len() as u64;
                }
            }
            while core.backlog() > 0 {
                drained += core.drain_cycle(0).admitted.len() as u64;
            }
            core.validate().expect("bench accounting");
            black_box(drained)
        })
    });
    g.finish();
}

fn mean_secs(results: &[BenchResult], id: &str) -> f64 {
    results
        .iter()
        .find(|r| r.id == id)
        .map(|r| r.mean.as_secs_f64())
        .expect("benchmark did not record a result")
}

fn main() {
    let mut c = Criterion::default();
    let report = bench_cycles(&mut c);
    bench_intake(&mut c);

    let cycles = report.metrics.cycle_latency.count() as f64;
    let run_secs = mean_secs(c.results(), "closed_loop_run");
    let cycles_per_sec = cycles / run_secs;
    let p99_solve_ms = report.metrics.solver_latency.quantile(0.99) * 1000.0;
    let intake_secs = mean_secs(c.results(), "intake_10k");
    let intake_throughput = INTAKE_JOBS as f64 / intake_secs;

    let mut samples = String::new();
    for r in c.results() {
        if !samples.is_empty() {
            samples.push_str(",\n");
        }
        samples.push_str(&format!(
            "    {{\"group\": \"{}\", \"id\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}}}",
            r.group,
            r.id,
            r.mean.as_nanos(),
            r.min.as_nanos()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"BENCH_6\",\n  \"schema\": 1,\n  \
         \"cycles_per_sec\": {cycles_per_sec:.2},\n  \
         \"p99_solve_latency_ms\": {p99_solve_ms:.3},\n  \
         \"intake_throughput_jobs_per_sec\": {intake_throughput:.0},\n  \
         \"cycles_timed\": {cycles},\n  \
         \"samples\": [\n{samples}\n  ]\n}}\n"
    );

    // CARGO_MANIFEST_DIR is crates/bench; the baseline lives at the
    // workspace root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/bench");
    let out = root.join("BENCH_6.json");
    std::fs::write(&out, &json).expect("write BENCH_6.json");
    println!("wrote {}", out.display());
    print!("{json}");
}
