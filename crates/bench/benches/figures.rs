//! Criterion benches: one per paper figure, at smoke scale, so
//! `cargo bench` regenerates every experiment pipeline in bounded time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tetrisched_bench::figures::{fig10, fig11, fig12_cdf, fig6, fig7, fig8, fig9, FigScale};

fn scale() -> FigScale {
    FigScale {
        num_jobs: 10,
        ..FigScale::smoke()
    }
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig6_grmix_error_sweep", |b| {
        b.iter(|| black_box(fig6(&scale())))
    });
    g.bench_function("fig7_grslo_error_sweep", |b| {
        b.iter(|| black_box(fig7(&scale())))
    });
    g.bench_function("fig8_gsmix_error_sweep", |b| {
        b.iter(|| black_box(fig8(&scale())))
    });
    g.bench_function("fig9_soft_constraint_ablation", |b| {
        b.iter(|| black_box(fig9(&scale())))
    });
    g.bench_function("fig10_global_ablation", |b| {
        b.iter(|| black_box(fig10(&scale())))
    });
    g.bench_function("fig11_plan_ahead_sweep", |b| {
        b.iter(|| black_box(fig11(&scale())))
    });
    g.bench_function("fig12_latency_cdfs", |b| {
        b.iter(|| black_box(fig12_cdf(&scale())))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
