//! `tetrisched-parallel`: the workspace's single audited concurrency seam.
//!
//! This crate is **deliberately empty**. It exists so that when the
//! decomposed MILP solver (ROADMAP item 1: partition the placement
//! problem per equivalence-set shard, solve shards on a worker pool,
//! recombine under the global objective) introduces threads, the
//! concurrency machinery has exactly one pre-declared home:
//!
//! - `srclint` code `L010` forbids `std::thread`, `std::sync`, channels,
//!   atomics, and `static mut` in **every** other product crate. Only
//!   files under `crates/parallel/src/` may name them.
//! - `srclint` code `L009` forbids float `==`/`!=` and iterator
//!   `sum`/`fold` reductions in the solver crates outside the fixed-order
//!   kernels in `crates/milp/src/kernels.rs`. Shard-merge code in this
//!   crate must therefore route every cross-shard float reduction through
//!   those kernels, in shard-index order — which is what keeps same-seed
//!   runs byte-identical even when shard *completion* order varies.
//!
//! The contract for future code in this crate:
//!
//! 1. **Determinism first.** Worker scheduling may be nondeterministic;
//!    observable results may not. Merge in a fixed total order (shard
//!    index), never completion order.
//! 2. **No shared mutable state.** Workers receive owned inputs and
//!    return owned outputs; the only synchronization is the join.
//! 3. **Panics stay inside.** A worker panic must surface as a typed
//!    error at the seam boundary (`L008` keeps the scheduler hot path
//!    panic-free; this crate must not reintroduce one via `join()`).

// Intentionally no items yet. The first real resident will be the
// decomposed-solver worker pool.
