//! High-availability service placement with combinatorial constraints.
//!
//! Sec. 4 of the paper motivates `SCALE` and `BARRIER` with exactly this
//! scenario: "a request to place up to, but no more than, k0 borgmaster
//! servers in any given failure domain totaling k servers". The encoding:
//!
//! - one `LnCk(domain, k0, ..., v = k0)` per failure domain caps the
//!   replicas per domain at `k0` and yields one unit of value per replica
//!   obtained,
//! - a `sum` aggregates the per-domain counts,
//! - a `barrier(k, ...)` requires at least `k` replicas in total.
//!
//! The solver must therefore spread `k` replicas across domains with at
//! most `k0` in any one of them — or place nothing at all.
//!
//! Run: `cargo run --release --example availability_service`

use tetrisched::cluster::{Cluster, NodeSet, PartitionSet, RackId};
use tetrisched::core::{compile, CompileInput};
use tetrisched::milp::SolverConfig;
use tetrisched::strl::StrlExpr;

fn place(
    cluster: &Cluster,
    k: u32,
    k0: u32,
    dead_domain: Option<RackId>,
) -> Option<Vec<(RackId, u32)>> {
    // One LnCk per failure domain (rack), worth 1 per replica placed.
    let legs: Vec<StrlExpr> = (0..cluster.num_racks() as u32)
        .map(|r| StrlExpr::lnck(cluster.rack_nodes(RackId(r)).clone(), k0, 0, 100, k0 as f64))
        .collect();
    let expr = StrlExpr::barrier(k as f64, StrlExpr::Sum(legs));

    let sets: Vec<NodeSet> = (0..cluster.num_racks() as u32)
        .map(|r| cluster.rack_nodes(RackId(r)).clone())
        .collect();
    let partitions = PartitionSet::refine(cluster.num_nodes(), &sets);
    let input = CompileInput {
        expr: &expr,
        partitions: &partitions,
        now: 0,
        quantum: 100,
        n_slices: 1,
    };
    let avail = move |class: &NodeSet, _| {
        if let Some(dead) = dead_domain {
            if !class.is_disjoint(cluster.rack_nodes(dead)) {
                return 0;
            }
        }
        class.len()
    };
    let compiled = compile(&input, &avail).expect("compile");
    let sol = compiled.model.solve(&SolverConfig::exact()).expect("solve");
    if sol.objective < k as f64 - 1e-6 {
        return None; // The barrier could not be met.
    }
    let mut out = Vec::new();
    for c in compiled.chosen(&sol) {
        for &(class, count) in &c.counts {
            // Each partition class is a subset of exactly one rack here.
            let node = partitions.class(class).iter().next().expect("non-empty");
            out.push((cluster.rack_of(node), count));
        }
    }
    out.sort_by_key(|&(r, _)| r);
    Some(out)
}

fn main() {
    // 4 failure domains of 3 machines each.
    let cluster = Cluster::uniform(4, 3, 0);
    println!("cluster: 4 failure domains x 3 servers\n");

    for (k, k0) in [(5u32, 2u32), (8, 2), (4, 1), (9, 2)] {
        print!("place k={k} replicas, at most k0={k0} per domain: ");
        match place(&cluster, k, k0, None) {
            Some(spread) => {
                let desc: Vec<String> = spread.iter().map(|(r, n)| format!("{n} in {r}")).collect();
                println!("{}", desc.join(", "));
                assert!(spread.iter().all(|&(_, n)| n <= k0));
                assert_eq!(spread.iter().map(|&(_, n)| n).sum::<u32>(), k);
            }
            None => println!("infeasible (barrier unmet) — placed nothing"),
        }
    }

    // Tolerance to a failed domain: with rack 0 down, 5 replicas at <= 2
    // per domain still fit in the remaining 3 domains.
    println!("\nwith failure domain rack0 down:");
    match place(&cluster, 5, 2, Some(RackId(0))) {
        Some(spread) => {
            assert!(spread.iter().all(|&(r, _)| r != RackId(0)));
            let desc: Vec<String> = spread.iter().map(|(r, n)| format!("{n} in {r}")).collect();
            println!("  k=5, k0=2: {}", desc.join(", "));
        }
        None => println!("  k=5, k0=2: infeasible"),
    }
    // But 7 replicas cannot respect k0=2 across only 3 live domains.
    assert!(place(&cluster, 7, 2, Some(RackId(0))).is_none());
    println!("  k=7, k0=2: infeasible (correctly placed nothing)");
}
