//! A miniature GR MIX experiment: a production-derived mixture of SLO and
//! best-effort jobs (Table 1) simulated under both scheduler stacks —
//! Rayon/TetriSched and Rayon/CapacityScheduler — with the paper's four
//! success metrics printed side by side (Sec. 6.3).
//!
//! Run: `cargo run --release --example production_mix`

use tetrisched::baseline::CapacityScheduler;
use tetrisched::cluster::Cluster;
use tetrisched::core::{TetriSched, TetriSchedConfig};
use tetrisched::sim::{SimConfig, SimReport, Simulator};
use tetrisched::workloads::{GridmixConfig, Workload, WorkloadBuilder};

fn run(name: &str, report: &SimReport) {
    let m = &report.metrics;
    println!(
        "{name:<14} accepted-SLO {:>5.1}%  total-SLO {:>5.1}%  w/o-res {:>5.1}%  \
         BE latency {:>6.1}s  util {:>4.1}%  preemptions {}",
        m.accepted_slo_attainment(),
        m.total_slo_attainment(),
        m.nores_slo_attainment(),
        m.be_mean_latency(),
        m.utilization() * 100.0,
        m.preemptions,
    );
}

fn main() {
    let cluster = Cluster::uniform(4, 8, 1); // 32 nodes, 1 GPU rack
    let builder = WorkloadBuilder::new(GridmixConfig {
        seed: 7,
        num_jobs: 40,
        cluster_size: cluster.num_nodes(),
        target_utilization: 1.0,
        estimate_error: 0.0,
        error_jitter: 0.0,
        slowdown: 1.5,
    });
    // Jobs arrive with under-estimated runtimes: the regime where the
    // baseline's static reservation plan goes wrong (Sec. 7.1).
    let jobs = builder.with_estimate_error(Workload::GrMix, -0.2);

    println!(
        "GR MIX: {} jobs on {} nodes, estimate error -20%\n",
        jobs.len(),
        cluster.num_nodes()
    );

    let ts = Simulator::new(
        cluster.clone(),
        TetriSched::new(TetriSchedConfig::default()),
        SimConfig::default(),
    )
    .run(jobs.clone());
    run("tetrisched", &ts);

    let cs = Simulator::new(
        cluster,
        CapacityScheduler::paper_default(),
        SimConfig::default(),
    )
    .run(jobs);
    run("rayon-cs", &cs);

    println!(
        "\nTetriSched re-plans every cycle and bumps under-estimates upward \
         instead of demoting jobs to the best-effort queue."
    );
}
