//! Runs the Sec. 5.1 jobs through the *full* stack — reservation
//! admission, the TetriSched scheduler, the discrete-event simulator — and
//! renders the resulting schedule as the paper's Fig. 4 machine × time
//! grid.
//!
//! Run: `cargo run --release --example schedule_trace`

use tetrisched::cluster::Cluster;
use tetrisched::core::{TetriSched, TetriSchedConfig};
use tetrisched::sim::{gantt, JobId, JobSpec, JobType, SimConfig, Simulator};

fn main() {
    let cluster = Cluster::three_machines();
    let job = |id: u64, k: u32, runtime: u64, deadline: u64| JobSpec {
        id: JobId(id),
        submit: 0,
        job_type: JobType::Unconstrained,
        k,
        base_runtime: runtime,
        slowdown: 1.0,
        deadline: Some(deadline),
        estimate_error: 0.0,
    };
    // The Sec. 5.1 trio: only global scheduling with plan-ahead meets all
    // three deadlines (job 1 now, job 3 at 10, job 2 at 20).
    let jobs = vec![job(1, 2, 10, 10), job(2, 1, 20, 40), job(3, 3, 10, 20)];

    let config = TetriSchedConfig {
        plan_ahead: 30,
        cycle_period: 10,
        max_start_options: 4,
        ..TetriSchedConfig::default()
    };
    let report = Simulator::new(
        cluster.clone(),
        TetriSched::new(config),
        SimConfig {
            cycle_period: 10,
            trace: true,
            ..SimConfig::default()
        },
    )
    .run(jobs);

    println!(
        "SLO attainment: {:.0}%",
        report.metrics.total_slo_attainment()
    );
    println!("\nschedule (cf. paper Fig. 4):\n");
    print!(
        "{}",
        gantt::render(&report.trace, cluster.num_nodes(), 0, 40, 10)
    );
    println!("\noutcomes:");
    let mut ids: Vec<_> = report.outcomes.keys().collect();
    ids.sort();
    for id in ids {
        println!("  {:?}: {:?}", id, report.outcomes[id]);
    }
}
