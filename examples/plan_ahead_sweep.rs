//! A small Fig. 11-style sweep: SLO attainment of the heterogeneous
//! GS HET workload as the plan-ahead window grows from zero (the
//! TetriSched-NP / alsched point) upward.
//!
//! Run: `cargo run --release --example plan_ahead_sweep`

use tetrisched::cluster::Cluster;
use tetrisched::core::{TetriSched, TetriSchedConfig};
use tetrisched::sim::{SimConfig, Simulator};
use tetrisched::workloads::{GridmixConfig, Workload, WorkloadBuilder};

fn main() {
    let cluster = Cluster::uniform(4, 5, 1); // 20 nodes, 1 GPU rack
    let builder = WorkloadBuilder::new(GridmixConfig {
        seed: 11,
        num_jobs: 25,
        cluster_size: cluster.num_nodes(),
        ..GridmixConfig::default()
    });
    let jobs = builder.generate(Workload::GsHet);
    println!(
        "GS HET: {} jobs on {} nodes (GPU + MPI SLO jobs, unconstrained BE)\n",
        jobs.len(),
        cluster.num_nodes()
    );
    println!(
        "{:<14}{:>14}{:>14}{:>16}{:>18}",
        "plan-ahead", "total SLO %", "accepted %", "BE latency (s)", "solver mean (ms)"
    );
    for plan_ahead in [0u64, 16, 32, 64, 96] {
        let report = Simulator::new(
            cluster.clone(),
            TetriSched::new(TetriSchedConfig::full(plan_ahead)),
            SimConfig::default(),
        )
        .run(jobs.clone());
        let m = &report.metrics;
        println!(
            "{:<14}{:>14.1}{:>14.1}{:>16.1}{:>18.2}",
            plan_ahead,
            m.total_slo_attainment(),
            m.accepted_slo_attainment(),
            m.be_mean_latency(),
            m.solver_latency.mean() * 1e3,
        );
    }
    println!("\nplan-ahead = 0 emulates alsched (TetriSched-NP, Sec. 6.3).");
}
