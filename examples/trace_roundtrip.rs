//! Workload trace export/import: generate a Table 1 workload, save it to
//! the CSV trace format, reload it, and verify both copies drive the
//! simulator to identical outcomes — the reproducibility workflow for
//! sharing exact experiment inputs (DESIGN.md §4.2).
//!
//! Run: `cargo run --release --example trace_roundtrip`

use tetrisched::cluster::Cluster;
use tetrisched::core::{TetriSched, TetriSchedConfig};
use tetrisched::sim::{SimConfig, Simulator};
use tetrisched::workloads::{from_csv, to_csv, GridmixConfig, Workload, WorkloadBuilder};

fn main() {
    let cluster = Cluster::uniform(4, 5, 2);
    let jobs = WorkloadBuilder::new(GridmixConfig {
        seed: 21,
        num_jobs: 20,
        cluster_size: cluster.num_nodes(),
        ..GridmixConfig::default()
    })
    .generate(Workload::GsHet);

    let csv = to_csv(&jobs);
    println!(
        "exported {} jobs ({} bytes); first lines:\n",
        jobs.len(),
        csv.len()
    );
    for line in csv.lines().take(5) {
        println!("  {line}");
    }

    let reloaded = from_csv(&csv).expect("parse trace");
    assert_eq!(jobs.len(), reloaded.len());

    let run = |js| {
        Simulator::new(
            cluster.clone(),
            TetriSched::new(TetriSchedConfig::full(48)),
            SimConfig::default(),
        )
        .run(js)
    };
    let a = run(jobs);
    let b = run(reloaded);
    assert_eq!(a.end_time, b.end_time);
    for (id, out) in &a.outcomes {
        assert_eq!(out, &b.outcomes[id], "outcome mismatch for {id:?}");
    }
    println!(
        "\nreloaded trace reproduces the run exactly: {} jobs, end time {}s, \
         total SLO attainment {:.1}%",
        a.outcomes.len(),
        a.end_time,
        a.metrics.total_slo_attainment()
    );
}
