//! Quickstart: the paper's Sec. 5.1 example, end to end.
//!
//! Three jobs arrive on a 3-machine cluster:
//!
//! 1. a short, urgent job: 2 machines for 10 s, deadline 10 s,
//! 2. a long, small job: 1 machine for 20 s, deadline 40 s,
//! 3. a short, large job: 3 machines for 10 s, deadline 20 s.
//!
//! The only way to meet every deadline is *global* scheduling with
//! *plan-ahead*: job 1 now, job 3 at t=10, job 2 at t=20 (Fig. 4). This
//! example builds the STRL expressions, compiles them to a MILP with
//! Algorithm 1, solves with the in-repo branch-and-bound, and prints the
//! chosen schedule.
//!
//! Run: `cargo run --release --example quickstart`

use tetrisched::cluster::{Cluster, NodeSet, PartitionSet};
use tetrisched::core::{compile, CompileInput};
use tetrisched::milp::SolverConfig;
use tetrisched::strl::StrlExpr;

fn main() {
    let cluster = Cluster::three_machines();
    let all = cluster.all_nodes();

    // Job 1 has no start-time flexibility; jobs 2 and 3 enumerate their
    // feasible start times (deadline-culled) under a `max`.
    let job1 = StrlExpr::nck(all.clone(), 2, 0, 10, 1.0);
    let job2 = StrlExpr::max([
        StrlExpr::nck(all.clone(), 1, 0, 20, 1.0),
        StrlExpr::nck(all.clone(), 1, 10, 20, 1.0),
        StrlExpr::nck(all.clone(), 1, 20, 20, 1.0),
    ]);
    let job3 = StrlExpr::max([
        StrlExpr::nck(all.clone(), 3, 0, 10, 1.0),
        StrlExpr::nck(all.clone(), 3, 10, 10, 1.0),
    ]);

    // Global scheduling: batch all pending jobs under one `sum`.
    let global = StrlExpr::sum([job1, job2, job3]);
    println!("global STRL expression:\n  {global}\n");

    // One equivalence set (every machine is interchangeable here), so
    // partition refinement yields a single class.
    let partitions = PartitionSet::refine(cluster.num_nodes(), &[all]);
    let input = CompileInput {
        expr: &global,
        partitions: &partitions,
        now: 0,
        quantum: 10,
        n_slices: 4,
    };
    // The whole cluster is idle: 3 machines available at every slice.
    let avail = |_: &NodeSet, _| 3usize;
    let compiled = compile(&input, &avail).expect("compile");
    println!(
        "compiled MILP: {} variables ({} integer), {} constraints",
        compiled.model.num_vars(),
        compiled.model.num_integer_vars(),
        compiled.model.num_constraints()
    );

    let sol = compiled.model.solve(&SolverConfig::exact()).expect("solve");
    println!("objective = {} (all three jobs satisfied)\n", sol.objective);

    println!("schedule:");
    for (i, c) in compiled.chosen(&sol).iter().enumerate() {
        let leaf = &compiled.leaves[c.leaf];
        println!(
            "  job {} -> start t={:<2} k={} dur={}s",
            i + 1,
            leaf.start,
            leaf.k,
            leaf.dur
        );
    }
    println!("\n(matches Fig. 4: job1 @ 0, job2 @ 20, job3 @ 10)");
}
