//! The Fig. 1 toy cluster: 2 racks x 2 servers, rack 0 GPU-enabled, and
//! three jobs with very different placement preferences:
//!
//! - an **Availability** job that wants one server on *each* rack
//!   (anti-affinity, expressed with `min`),
//! - an **MPI** job that runs faster with both servers on one rack
//!   (combinatorial soft constraint, `max` over racks),
//! - a **GPU** job that runs faster on GPU servers (`max` over a GPU
//!   option and an anywhere fallback).
//!
//! The example prints each job's STRL expression (including a round-trip
//! through the STRL text parser) and the globally optimal placement.
//!
//! Run: `cargo run --release --example heterogeneous_cluster`

use tetrisched::cluster::{Cluster, NodeSet, PartitionSet, RackId};
use tetrisched::core::{compile, CompileInput};
use tetrisched::milp::SolverConfig;
use tetrisched::strl::{parse, StrlExpr};

fn main() {
    let cluster = Cluster::fig1_toy();
    let rack0 = cluster.rack_nodes(RackId(0)).clone();
    let rack1 = cluster.rack_nodes(RackId(1)).clone();
    let gpus = cluster.nodes_with_attr(&tetrisched::cluster::Attr::gpu());
    let all = cluster.all_nodes();

    // Availability job: one task per rack, 3 time units either way.
    let availability = StrlExpr::min([
        StrlExpr::nck(rack0.clone(), 1, 0, 3, 3.0),
        StrlExpr::nck(rack1.clone(), 1, 0, 3, 3.0),
    ]);
    // MPI job: 2 time units rack-local, 3 spread.
    let mpi = StrlExpr::max([
        StrlExpr::nck(rack0.clone(), 2, 0, 2, 4.0),
        StrlExpr::nck(rack1.clone(), 2, 0, 2, 4.0),
        StrlExpr::nck(all.clone(), 2, 0, 3, 3.0),
    ]);
    // GPU job: 2 time units on GPUs, 3 anywhere (Fig. 3).
    let gpu = StrlExpr::max([
        StrlExpr::nck(gpus.clone(), 2, 0, 2, 4.0),
        StrlExpr::nck(all.clone(), 2, 0, 3, 3.0),
    ]);

    for (name, e) in [
        ("availability", &availability),
        ("mpi", &mpi),
        ("gpu", &gpu),
    ] {
        let text = e.to_string();
        println!("{name}: {text}");
        // The textual form round-trips through the STRL parser.
        let reparsed = parse(&text, cluster.num_nodes()).expect("parse");
        assert_eq!(&reparsed, e);
    }

    // Enumerate start times 0..4 for the GPU job to show space-time
    // elasticity, then schedule everything globally.
    let mut gpu_starts = Vec::new();
    for s in 0..4u64 {
        gpu_starts.push(StrlExpr::nck(gpus.clone(), 2, s, 2, 4.0 - 0.1 * s as f64));
        gpu_starts.push(StrlExpr::nck(all.clone(), 2, s, 3, 3.0 - 0.1 * s as f64));
    }
    let global = StrlExpr::sum([availability, mpi, StrlExpr::Max(gpu_starts)]);

    let sets = [rack0, rack1, gpus, all];
    let partitions = PartitionSet::refine(cluster.num_nodes(), &sets);
    println!(
        "\npartition refinement: {} classes from {} equivalence sets",
        partitions.len(),
        sets.len()
    );

    let input = CompileInput {
        expr: &global,
        partitions: &partitions,
        now: 0,
        quantum: 1,
        n_slices: 8,
    };
    let avail = |set: &NodeSet, _| set.len();
    let compiled = compile(&input, &avail).expect("compile");
    let sol = compiled.model.solve(&SolverConfig::exact()).expect("solve");

    println!(
        "MILP: {} vars, {} constraints -> objective {:.1}\n",
        compiled.model.num_vars(),
        compiled.model.num_constraints(),
        sol.objective
    );
    println!("chosen space-time allocations:");
    for c in compiled.chosen(&sol) {
        let leaf = &compiled.leaves[c.leaf];
        let counts: Vec<String> = c
            .counts
            .iter()
            .map(|&(class, n)| format!("{n} of {}", partitions.class(class)))
            .collect();
        println!(
            "  t={}..{}: {}",
            leaf.start,
            leaf.start + leaf.dur,
            counts.join(" + ")
        );
    }
}
