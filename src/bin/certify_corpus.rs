//! `certify_corpus`: CI sweep proving every solve is proof-carrying.
//!
//! Runs the TetriSched scheduler with solve certification enabled
//! (`certify_solves: true`) over a matrix of Table 1 workloads and
//! scheduler variants — global branch-and-bound, greedy job-at-a-time,
//! the LP-dive heuristic backend, and a chaos-degraded fallback cycle —
//! accumulating at least [`MIN_CYCLES`] scheduling cycles. Every MILP
//! outcome must carry a certificate that verifies (primal re-check,
//! dual/bound-tree audit replay, STRL→MILP translation validation), and
//! synthetic infeasible/unbounded models exercise the Farkas and ray
//! certificate paths that realistic workloads never hit (compiled models
//! are always feasible thanks to the free root indicator).
//!
//! ```text
//! cargo run --release --bin certify_corpus
//! ```
//!
//! Exit codes: `0` every certificate verified, `1` any failure or
//! coverage shortfall.

use std::process::ExitCode;

use tetrisched::cluster::Cluster;
use tetrisched::core::{TetriSched, TetriSchedConfig};
use tetrisched::lint::certify_solution;
use tetrisched::milp::{Model, Sense, SolveStatus, SolverConfig, VarKind};
use tetrisched::sim::{SimConfig, Simulator};
use tetrisched::workloads::{GridmixConfig, Workload, WorkloadBuilder};

/// Minimum scheduling cycles the corpus must cover.
const MIN_CYCLES: usize = 50;

/// Scheduler variants swept by the corpus.
#[derive(Clone, Copy)]
enum Variant {
    /// Global branch-and-bound (the paper's default).
    Global,
    /// Greedy job-at-a-time (`TetriSched-NG`).
    Greedy,
    /// The LP-dive heuristic backend (bound-only certificates).
    Heuristic,
    /// Global with the first solve chaos-failed: the degraded greedy
    /// fallback path must certify too.
    ChaosFallback,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::Global => "global",
            Variant::Greedy => "greedy",
            Variant::Heuristic => "heuristic",
            Variant::ChaosFallback => "chaos-fallback",
        }
    }

    fn config(self) -> TetriSchedConfig {
        let base = TetriSchedConfig {
            certify_solves: true,
            ..TetriSchedConfig::full(16)
        };
        match self {
            Variant::Global => base,
            Variant::Greedy => TetriSchedConfig {
                global: false,
                ..base
            },
            Variant::Heuristic => TetriSchedConfig {
                solver_heuristic: true,
                ..base
            },
            Variant::ChaosFallback => TetriSchedConfig {
                chaos_global_solve_failures: vec![1],
                ..base
            },
        }
    }
}

/// One corpus point; returns (cycles, verified, failures).
fn run_point(workload: Workload, variant: Variant, seed: u64) -> (usize, usize, usize) {
    let cluster = Cluster::uniform(4, 6, 2);
    let jobs = WorkloadBuilder::new(GridmixConfig {
        seed,
        num_jobs: 24,
        cluster_size: cluster.num_nodes(),
        ..GridmixConfig::default()
    })
    .generate(workload);
    let report = Simulator::new(
        cluster,
        TetriSched::new(variant.config()),
        SimConfig {
            horizon: Some(4000),
            ..SimConfig::default()
        },
    )
    .run(jobs);
    let cycles = report.metrics.cycle_latency.count();
    println!(
        "certify_corpus: {:>7} seed {seed:>2} {:<14} cycles {cycles:>4}  \
         verified {:>4}  failures {}",
        workload.name(),
        variant.name(),
        report.metrics.certificates_verified,
        report.metrics.certificate_failures,
    );
    (
        cycles,
        report.metrics.certificates_verified,
        report.metrics.certificate_failures,
    )
}

/// Audited solve of one synthetic model; returns (verified, failures)
/// after asserting the expected terminal status.
fn certify_edge_case(name: &str, model: &Model, expect: SolveStatus) -> (usize, usize) {
    let sol = match model.solve(&SolverConfig::exact().with_audit(true)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("certify_corpus: {name}: solver error {e}");
            return (0, 1);
        }
    };
    let mut failures = sol.stats.certificate_failures;
    if sol.status != expect {
        eprintln!(
            "certify_corpus: {name}: expected {expect:?}, got {:?}",
            sol.status
        );
        failures += 1;
    }
    // Re-run verification independently of the solver's own counters.
    let report = certify_solution(model, &sol);
    if !report.passed() {
        for d in &report.diagnostics {
            eprintln!("certify_corpus: {name}: {d}");
        }
        failures += report.diagnostics.len();
    }
    println!(
        "certify_corpus: edge {name:<22} status {:?}  verified {}  failures {failures}",
        sol.status,
        sol.stats.certificates_verified + report.verified,
    );
    (sol.stats.certificates_verified + report.verified, failures)
}

/// Synthetic models covering the Infeasible/Unbounded certificate paths.
fn edge_cases() -> Vec<(&'static str, Model, SolveStatus)> {
    // Presolve-certified infeasibility (bound propagation).
    let mut presolve_infeasible = Model::maximize();
    let x = presolve_infeasible.add_binary("x", 1.0);
    let y = presolve_infeasible.add_binary("y", 1.0);
    presolve_infeasible.add_constraint("lo", [(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);

    // LP-infeasible after integer rounding: needs a Farkas refutation.
    let mut farkas_infeasible = Model::maximize();
    let a = farkas_infeasible.add_var("a", VarKind::Continuous, 0.0, 1.0, 1.0);
    let b = farkas_infeasible.add_var("b", VarKind::Continuous, 0.0, 1.0, 1.0);
    farkas_infeasible.add_constraint("cap", [(a, 1.0), (b, 1.0)], Sense::Le, 1.0);
    farkas_infeasible.add_constraint("need", [(a, 1.0), (b, 1.0)], Sense::Ge, 1.5);

    // Unbounded: a free continuous direction with positive objective.
    let mut unbounded = Model::maximize();
    let u = unbounded.add_var("u", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
    let v = unbounded.add_var("v", VarKind::Continuous, 0.0, 4.0, 1.0);
    unbounded.add_constraint("only_v", [(v, 1.0)], Sense::Le, 4.0);
    let _ = u;

    vec![
        (
            "presolve-infeasible",
            presolve_infeasible,
            SolveStatus::Infeasible,
        ),
        (
            "farkas-infeasible",
            farkas_infeasible,
            SolveStatus::Infeasible,
        ),
        ("unbounded", unbounded, SolveStatus::Unbounded),
    ]
}

fn main() -> ExitCode {
    let workloads = [Workload::GrMix, Workload::GsMix, Workload::GsHet];
    let variants = [
        Variant::Global,
        Variant::Greedy,
        Variant::Heuristic,
        Variant::ChaosFallback,
    ];
    let extra_seeds = [7u64, 42];

    let mut cycles = 0usize;
    let mut verified = 0usize;
    let mut failures = 0usize;
    let mut runs = 0usize;

    // Coverage floor: every workload under every variant with the base
    // seed; then extra seeds until the cycle budget is met.
    for workload in workloads {
        for variant in variants {
            let (c, ok, bad) = run_point(workload, variant, 1);
            runs += 1;
            cycles += c;
            verified += ok;
            failures += bad;
        }
    }
    'extra: for seed in extra_seeds {
        for workload in workloads {
            if cycles >= MIN_CYCLES {
                break 'extra;
            }
            let (c, ok, bad) = run_point(workload, Variant::Global, seed);
            runs += 1;
            cycles += c;
            verified += ok;
            failures += bad;
        }
    }

    for (name, model, expect) in edge_cases() {
        let (ok, bad) = certify_edge_case(name, &model, expect);
        verified += ok;
        failures += bad;
    }

    println!(
        "certify_corpus: {runs} runs, {cycles} cycles, \
         {verified} certificates verified, {failures} failures"
    );
    if cycles < MIN_CYCLES {
        eprintln!("certify_corpus: FAIL — covered {cycles} cycles, need {MIN_CYCLES}");
        return ExitCode::from(1);
    }
    if verified == 0 {
        eprintln!("certify_corpus: FAIL — no certificates were produced");
        return ExitCode::from(1);
    }
    if failures > 0 {
        eprintln!("certify_corpus: FAIL — {failures} certificate failure(s)");
        return ExitCode::from(1);
    }
    println!("certify_corpus: PASS");
    ExitCode::SUCCESS
}
