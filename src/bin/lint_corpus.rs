//! `lint_corpus`: CI sweep proving generated workloads stay lint-clean.
//!
//! Runs the TetriSched scheduler with the on-cycle linter enabled
//! (`lint_models: true`) over a matrix of Table 1 workloads and scheduler
//! variants, accumulating at least [`MIN_CYCLES`] scheduling cycles. Every
//! cycle lints the generated STRL expressions and the compiled MILP model;
//! any Error-severity finding fails the run.
//!
//! ```text
//! cargo run --release --bin lint_corpus
//! ```
//!
//! Exit codes: `0` corpus clean, `1` Error findings or coverage shortfall.

use std::process::ExitCode;

use tetrisched::cluster::Cluster;
use tetrisched::core::{TetriSched, TetriSchedConfig};
use tetrisched::sim::{SimConfig, Simulator};
use tetrisched::workloads::{GridmixConfig, Workload, WorkloadBuilder};

/// Minimum scheduling cycles the corpus must cover.
const MIN_CYCLES: usize = 50;

/// One corpus point: a workload under a scheduler variant with a seed.
fn run_point(workload: Workload, variant_global: bool, seed: u64) -> (usize, usize, usize) {
    let cluster = Cluster::uniform(4, 6, 2);
    let jobs = WorkloadBuilder::new(GridmixConfig {
        seed,
        num_jobs: 24,
        cluster_size: cluster.num_nodes(),
        ..GridmixConfig::default()
    })
    .generate(workload);
    let config = TetriSchedConfig {
        lint_models: true,
        ..if variant_global {
            TetriSchedConfig::full(16)
        } else {
            TetriSchedConfig::no_global(16)
        }
    };
    let name = config.variant_name();
    let report = Simulator::new(
        cluster,
        TetriSched::new(config),
        SimConfig {
            horizon: Some(4000),
            ..SimConfig::default()
        },
    )
    .run(jobs);
    let cycles = report.metrics.cycle_latency.count();
    println!(
        "lint_corpus: {:>7} seed {seed:>2} {name:<14} cycles {cycles:>4}  \
         lint_errors {}  presolve_certified {}",
        workload.name(),
        report.metrics.lint_errors,
        report.metrics.lint_presolve_rejections,
    );
    (
        cycles,
        report.metrics.lint_errors,
        report.metrics.lint_presolve_rejections,
    )
}

fn main() -> ExitCode {
    let workloads = [Workload::GrMix, Workload::GsMix, Workload::GsHet];
    let extra_seeds = [7u64, 42];

    let mut cycles = 0usize;
    let mut lint_errors = 0usize;
    let mut presolve_rejections = 0usize;
    let mut runs = 0usize;

    // Coverage floor: every workload under both variants with the base
    // seed; then extra seeds until the cycle budget is met.
    for workload in workloads {
        for variant_global in [true, false] {
            let (c, e, p) = run_point(workload, variant_global, 1);
            runs += 1;
            cycles += c;
            lint_errors += e;
            presolve_rejections += p;
        }
    }
    'extra: for seed in extra_seeds {
        for workload in workloads {
            if cycles >= MIN_CYCLES {
                break 'extra;
            }
            let (c, e, p) = run_point(workload, true, seed);
            runs += 1;
            cycles += c;
            lint_errors += e;
            presolve_rejections += p;
        }
    }

    println!(
        "lint_corpus: {runs} runs, {cycles} cycles, {lint_errors} lint errors, \
         {presolve_rejections} presolve certificates"
    );
    if cycles < MIN_CYCLES {
        eprintln!("lint_corpus: FAIL — covered {cycles} cycles, need {MIN_CYCLES}");
        return ExitCode::from(1);
    }
    if lint_errors > 0 {
        eprintln!("lint_corpus: FAIL — {lint_errors} Error-severity lint findings");
        return ExitCode::from(1);
    }
    println!("lint_corpus: PASS");
    ExitCode::SUCCESS
}
