//! `observe`: telemetry-enabled run with exportable cycle forensics.
//!
//! Runs a deterministic Gridmix workload under the full TetriSched stack
//! with spans, counters, histograms, and the event trace all enabled, then
//!
//! 1. writes the three telemetry exports (JSONL event log, Chrome
//!    `trace_event` file for `chrome://tracing`/Perfetto, Prometheus-style
//!    text snapshot) under `target/observe/`, and
//! 2. prints a per-cycle forensics report: the phase-latency table, the
//!    top-k slowest cycles with their span trees, and counter deltas
//!    between degraded (greedy-fallback) and healthy cycles.
//!
//! ```text
//! cargo run --release --bin observe [-- --check]
//! ```
//!
//! With `--check` (the CI mode) the workload is run twice and the run
//! fails unless ≥50 cycles were covered, every pipeline phase recorded at
//! least one span, no exporter errored, and all three exports are
//! byte-identical across the two same-seed runs.
//!
//! Exit codes: `0` ok, `1` a `--check` assertion or exporter write failed.

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use tetrisched::cluster::Cluster;
use tetrisched::core::{TetriSched, TetriSchedConfig};
use tetrisched::sim::{
    SimConfig, SimReport, Simulator, SpanRecord, TelemetryConfig, TelemetrySnapshot,
};
use tetrisched::workloads::{GridmixConfig, Workload, WorkloadBuilder};

/// Workload seed; fixed so two runs are byte-comparable.
const SEED: u64 = 7;

/// Minimum scheduling cycles `--check` must cover.
const MIN_CYCLES: usize = 50;

/// How many of the slowest cycles get a span tree in the report.
const TOP_K: usize = 3;

/// Pipeline phases `--check` requires at least one span for. `greedy`
/// is absent: it only runs on degraded cycles.
const REQUIRED_PHASES: [&str; 7] = [
    "collect", "strl_gen", "lint", "compile", "solve", "certify", "decode",
];

fn run_once() -> SimReport {
    let cluster = Cluster::uniform(4, 6, 2);
    let jobs = WorkloadBuilder::new(GridmixConfig {
        seed: SEED,
        num_jobs: 48,
        cluster_size: cluster.num_nodes(),
        ..GridmixConfig::default()
    })
    .generate(Workload::GsMix);
    // A generous solver budget that no solve actually reaches: the MILP
    // time limit is a *wall-clock* cutoff (L001-allowlisted), so a solve
    // that hits it explores a run-dependent number of nodes and the
    // byte-identity of the exports would be lost. The modest plan-ahead
    // keeps every exact solve comfortably under the budget.
    let config = TetriSchedConfig {
        lint_models: true,
        certify_solves: true,
        solver_time_limit: std::time::Duration::from_secs(120),
        ..TetriSchedConfig::full(8)
    };
    Simulator::new(
        cluster,
        TetriSched::new(config),
        SimConfig {
            horizon: Some(4000),
            trace: true,
            telemetry: TelemetryConfig::on(),
            ..SimConfig::default()
        },
    )
    .run(jobs)
}

/// The three exports of one run, as bytes.
struct Exports {
    jsonl: String,
    chrome: String,
    prom: String,
}

fn export(report: &SimReport) -> Exports {
    Exports {
        // Wall-domain values vary run to run; exports stay sim-only so
        // they are byte-identical across same-seed runs.
        jsonl: report.telemetry.to_jsonl(false),
        chrome: report.telemetry.to_chrome_trace(),
        prom: report.telemetry.to_prometheus(false),
    }
}

fn write_exports(dir: &Path, e: &Exports) -> Result<(), std::io::Error> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join("trace.jsonl"), &e.jsonl)?;
    fs::write(dir.join("chrome_trace.json"), &e.chrome)?;
    fs::write(dir.join("metrics.prom"), &e.prom)?;
    Ok(())
}

/// Spans grouped by name, for phase coverage and the phase table.
fn span_counts(snap: &TelemetrySnapshot) -> Vec<(&str, usize)> {
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for s in &snap.spans {
        *counts.entry(s.name).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

fn print_phase_table(report: &SimReport) {
    println!("-- phase latency (wall, ms) --");
    println!(
        "{:<12}{:>8}{:>10}{:>10}{:>10}{:>10}",
        "phase", "count", "mean", "p50", "p95", "p99"
    );
    for phase in [
        "collect", "strl_gen", "lint", "compile", "solve", "certify", "decode", "greedy",
    ] {
        let mut name = String::from("phase.");
        name.push_str(phase);
        name.push_str("_secs");
        let Some(h) = report.telemetry.wall_hist(&name) else {
            continue;
        };
        println!(
            "{:<12}{:>8}{:>10.3}{:>10.3}{:>10.3}{:>10.3}",
            phase,
            h.count(),
            h.mean() * 1e3,
            h.quantile(0.5) * 1e3,
            h.quantile(0.95) * 1e3,
            h.quantile(0.99) * 1e3,
        );
    }
}

/// Value of a span's integer annotation, if present.
fn span_arg(s: &SpanRecord, key: &str) -> Option<u64> {
    s.args.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
}

/// Prints `span` and its subtree, indented; children are found by parent
/// links (span ids are recording-ordered, so one forward scan suffices).
fn print_span_tree(snap: &TelemetrySnapshot, span: &SpanRecord, depth: usize) {
    let args: Vec<String> = span.args.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!(
        "{:indent$}{}/{} [{} us] {}",
        "",
        span.cat,
        span.name,
        span.end_us.saturating_sub(span.start_us),
        args.join(" "),
        indent = depth * 2
    );
    for child in &snap.spans {
        if child.parent == Some(span.id) {
            print_span_tree(snap, child, depth + 1);
        }
    }
}

fn print_slowest_cycles(report: &SimReport, snap: &TelemetrySnapshot) {
    // Cycle ordinal -> wall seconds, slowest first.
    let samples = report.metrics.cycle_latency.samples();
    let mut ranked: Vec<(usize, f64)> = samples.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("-- top {TOP_K} slowest cycles (wall) --");
    for &(ordinal, secs) in ranked.iter().take(TOP_K) {
        println!("cycle {ordinal}: {:.3} ms", secs * 1e3);
        let cycle_span = snap
            .spans
            .iter()
            .find(|s| s.name == "cycle" && span_arg(s, "cycle") == Some(ordinal as u64));
        match cycle_span {
            Some(s) => print_span_tree(snap, s, 1),
            None => println!("  (span dropped: capacity reached)"),
        }
    }
}

/// Counter deltas between degraded (greedy-fallback) and healthy cycles,
/// accumulated from the per-cycle span annotations.
fn print_degraded_deltas(snap: &TelemetrySnapshot) {
    let mut healthy = (0u64, 0u64, 0u64, 0u64); // cycles, launches, errors, preemptions
    let mut degraded = (0u64, 0u64, 0u64, 0u64);
    for s in &snap.spans {
        if s.name != "cycle" {
            continue;
        }
        let bucket = if span_arg(s, "degraded") == Some(1) {
            &mut degraded
        } else {
            &mut healthy
        };
        bucket.0 += 1;
        bucket.1 += span_arg(s, "launches").unwrap_or(0);
        bucket.2 += span_arg(s, "errors").unwrap_or(0);
        bucket.3 += span_arg(s, "preemptions").unwrap_or(0);
    }
    println!("-- degraded vs healthy cycles --");
    println!(
        "{:<10}{:>8}{:>10}{:>8}{:>13}",
        "mode", "cycles", "launches", "errors", "preemptions"
    );
    for (mode, t) in [("healthy", healthy), ("degraded", degraded)] {
        println!("{:<10}{:>8}{:>10}{:>8}{:>13}", mode, t.0, t.1, t.2, t.3);
    }
}

/// `--check` assertions; returns the failure messages.
fn check(
    report: &SimReport,
    snap: &TelemetrySnapshot,
    first: &Exports,
    second: &Exports,
) -> Vec<String> {
    let mut failures = Vec::new();
    let cycles = report.metrics.cycle_latency.count();
    if cycles < MIN_CYCLES {
        failures.push(format!(
            "coverage shortfall: {cycles} cycles < {MIN_CYCLES}"
        ));
    }
    let counts = span_counts(snap);
    for phase in REQUIRED_PHASES {
        let n = counts
            .iter()
            .find(|(name, _)| *name == phase)
            .map_or(0, |&(_, n)| n);
        if n == 0 {
            failures.push(format!("phase `{phase}` recorded zero spans"));
        }
    }
    if snap.spans_dropped > 0 {
        failures.push(format!("{} spans dropped (capacity)", snap.spans_dropped));
    }
    for (what, a, b) in [
        ("jsonl", &first.jsonl, &second.jsonl),
        ("chrome", &first.chrome, &second.chrome),
        ("prometheus", &first.prom, &second.prom),
    ] {
        if a != b {
            failures.push(format!("{what} export differs between same-seed runs"));
        }
    }
    failures
}

fn main() -> ExitCode {
    let check_mode = std::env::args().any(|a| a == "--check");
    let report = run_once();
    let snap = report.telemetry.snapshot();
    let exports = export(&report);

    let out_dir = Path::new("target/observe");
    if let Err(e) = write_exports(out_dir, &exports) {
        eprintln!("observe: exporter error: {e}");
        return ExitCode::from(1);
    }
    println!(
        "observe: {} cycles, {} spans ({} dropped), {} trace events ({} dropped), \
         warm starts {} hit / {} miss",
        report.metrics.cycle_latency.count(),
        snap.spans.len(),
        snap.spans_dropped,
        report.trace.recorded(),
        report.trace.dropped(),
        report.metrics.warm_start_hits,
        report.metrics.warm_start_misses,
    );
    println!(
        "observe: wrote trace.jsonl, chrome_trace.json, metrics.prom under {}",
        out_dir.display()
    );
    println!();
    print_phase_table(&report);
    println!();
    print_slowest_cycles(&report, &snap);
    println!();
    print_degraded_deltas(&snap);

    if !check_mode {
        return ExitCode::SUCCESS;
    }
    // Second same-seed run: the sim-domain exports must be byte-identical.
    let second = export(&run_once());
    let failures = check(&report, &snap, &exports, &second);
    if failures.is_empty() {
        println!("\nobserve --check: OK");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("observe --check: FAIL: {f}");
        }
        ExitCode::from(1)
    }
}
