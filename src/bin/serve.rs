//! `serve`: open-loop service-mode experiment under sustained overload.
//!
//! Drives the event-driven service core (sharded intake, admission
//! batching, backpressure, fair-share weighting) with an open-loop
//! Gridmix arrival stream at 2× the cluster's calibrated saturation rate,
//! then
//!
//! 1. writes the three telemetry exports (JSONL, Chrome trace, Prometheus
//!    snapshot) under `target/serve/`, and
//! 2. prints the service-core accounting: arrivals, admitted, shed,
//!    deferred job-cycles, mailbox overflows, and the resulting SLO/BE
//!    class outcomes.
//!
//! ```text
//! cargo run --release --bin serve [-- --check]
//! ```
//!
//! With `--check` (the CI mode) the run fails unless ≥50 scheduling
//! cycles were covered, every pipeline phase recorded at least one span,
//! backpressure actually engaged (nonzero shed and deferred counters),
//! the shed accounting is exact (every shed job carries a typed outcome
//! and a trace event, and class totals equal admissions), and a second
//! same-seed run produces byte-identical exports.
//!
//! Exit codes: `0` ok, `1` a `--check` assertion or exporter write failed.

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use tetrisched::cluster::Cluster;
use tetrisched::core::{TetriSched, TetriSchedConfig};
use tetrisched::service::{AdmissionPolicy, FairShareConfig, ServiceConfig};
use tetrisched::sim::{
    JobOutcome, SimConfig, SimReport, Simulator, TelemetryConfig, TelemetrySnapshot, TraceEvent,
};
use tetrisched::workloads::{GridmixConfig, OpenLoopConfig, OpenLoopDriver, Workload};

/// Workload seed; fixed so two runs are byte-comparable.
const SEED: u64 = 5;

/// Offered arrivals.
const NUM_JOBS: usize = 60;

/// Arrival-rate multiplier over the calibrated saturation point.
const RATE: f64 = 2.0;

/// Minimum scheduling cycles `--check` must cover.
const MIN_CYCLES: usize = 50;

/// Pipeline phases `--check` requires at least one span for.
const REQUIRED_PHASES: [&str; 7] = [
    "collect", "strl_gen", "lint", "compile", "solve", "certify", "decode",
];

fn run_once() -> SimReport {
    let jobs = OpenLoopDriver::new(OpenLoopConfig::saturating(
        GridmixConfig {
            seed: SEED,
            num_jobs: NUM_JOBS,
            cluster_size: 16,
            target_utilization: 1.0,
            estimate_error: 0.0,
            error_jitter: 0.0,
            slowdown: 1.5,
        },
        RATE,
    ))
    .generate(Workload::GsMix);
    // Small bounded queues so 2× saturation visibly defers and sheds.
    let service = ServiceConfig::open(
        4,
        8,
        AdmissionPolicy {
            max_admissions_per_cycle: 4,
            max_scheduler_backlog: 8,
            shed_queue_depth: 16,
        },
        FairShareConfig::enabled(4),
    );
    // Generous solver budget no solve reaches: a wall-clock cutoff that
    // actually fired would make the explored node count run-dependent and
    // break export byte-identity (see `observe`).
    let config = TetriSchedConfig {
        lint_models: true,
        certify_solves: true,
        solver_time_limit: std::time::Duration::from_secs(120),
        ..TetriSchedConfig::full(16)
    };
    Simulator::new(
        Cluster::uniform(2, 8, 1),
        TetriSched::new(config),
        SimConfig {
            horizon: Some(3000),
            trace: true,
            telemetry: TelemetryConfig::on(),
            service,
            ..SimConfig::default()
        },
    )
    .run(jobs)
}

/// The three exports of one run, as bytes (sim-domain only, so same-seed
/// runs compare byte-for-byte).
struct Exports {
    jsonl: String,
    chrome: String,
    prom: String,
}

fn export(report: &SimReport) -> Exports {
    Exports {
        jsonl: report.telemetry.to_jsonl(false),
        chrome: report.telemetry.to_chrome_trace(),
        prom: report.telemetry.to_prometheus(false),
    }
}

fn write_exports(dir: &Path, e: &Exports) -> Result<(), std::io::Error> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join("trace.jsonl"), &e.jsonl)?;
    fs::write(dir.join("chrome_trace.json"), &e.chrome)?;
    fs::write(dir.join("metrics.prom"), &e.prom)?;
    Ok(())
}

fn shed_outcomes(report: &SimReport) -> u64 {
    report
        .outcomes
        .values()
        .filter(|o| matches!(o, JobOutcome::Shed { .. }))
        .count() as u64
}

fn shed_traces(report: &SimReport) -> u64 {
    report
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Shed { .. }))
        .count() as u64
}

fn print_summary(report: &SimReport) {
    let m = &report.metrics;
    println!("-- service accounting --");
    println!("{:<22}{:>8}", "arrivals offered", NUM_JOBS);
    println!("{:<22}{:>8}", "admitted", m.jobs_admitted);
    println!("{:<22}{:>8}", "shed", m.jobs_shed);
    println!("{:<22}{:>8}", "deferred job-cycles", m.jobs_deferred);
    println!("{:<22}{:>8}", "mailbox overflows", m.intake_overflows);
    println!();
    println!("-- admitted job classes --");
    println!(
        "{:<22}{:>5}/{}",
        "SLO accepted met", m.accepted_slo_met, m.accepted_slo_total
    );
    println!(
        "{:<22}{:>5}/{}",
        "SLO no-reservation met", m.nores_slo_met, m.nores_slo_total
    );
    println!(
        "{:<22}{:>5}/{}",
        "best-effort completed", m.be_completed, m.be_total
    );
    println!("{:<22}{:>8}", "incomplete at horizon", m.incomplete);
}

/// `--check` assertions; returns the failure messages.
fn check(
    report: &SimReport,
    snap: &TelemetrySnapshot,
    first: &Exports,
    second: &Exports,
) -> Vec<String> {
    let mut failures = Vec::new();
    let m = &report.metrics;
    let cycles = m.cycle_latency.count();
    if cycles < MIN_CYCLES {
        failures.push(format!(
            "coverage shortfall: {cycles} cycles < {MIN_CYCLES}"
        ));
    }
    for phase in REQUIRED_PHASES {
        if !snap.spans.iter().any(|s| s.name == phase) {
            failures.push(format!("phase `{phase}` recorded zero spans"));
        }
    }
    // Backpressure must actually engage at 2× saturation.
    if m.jobs_deferred == 0 {
        failures.push("no arrivals deferred at 2x saturation".to_string());
    }
    if m.jobs_shed == 0 {
        failures.push("no arrivals shed at 2x saturation".to_string());
    }
    // Shed accounting is exact: typed outcomes and trace events agree
    // with the counter, class totals cover exactly the admitted jobs,
    // and nothing is double-counted.
    if shed_outcomes(report) != m.jobs_shed {
        failures.push(format!(
            "shed outcome mismatch: {} outcomes vs {} counted",
            shed_outcomes(report),
            m.jobs_shed
        ));
    }
    if shed_traces(report) != m.jobs_shed {
        failures.push(format!(
            "shed trace mismatch: {} events vs {} counted",
            shed_traces(report),
            m.jobs_shed
        ));
    }
    let classed = (m.accepted_slo_total + m.nores_slo_total + m.be_total) as u64;
    if classed != m.jobs_admitted {
        failures.push(format!(
            "class totals {} != admissions {}",
            classed, m.jobs_admitted
        ));
    }
    if m.jobs_admitted + m.jobs_shed > NUM_JOBS as u64 {
        failures.push(format!(
            "admitted {} + shed {} exceed the {NUM_JOBS} offered arrivals",
            m.jobs_admitted, m.jobs_shed
        ));
    }
    if m.intake_overflows > m.jobs_shed {
        failures.push(format!(
            "mailbox overflows {} exceed total shed {}",
            m.intake_overflows, m.jobs_shed
        ));
    }
    for (what, a, b) in [
        ("jsonl", &first.jsonl, &second.jsonl),
        ("chrome", &first.chrome, &second.chrome),
        ("prometheus", &first.prom, &second.prom),
    ] {
        if a != b {
            failures.push(format!("{what} export differs between same-seed runs"));
        }
    }
    failures
}

fn main() -> ExitCode {
    let check_mode = std::env::args().any(|a| a == "--check");
    let report = run_once();
    let snap = report.telemetry.snapshot();
    let exports = export(&report);

    let out_dir = Path::new("target/serve");
    if let Err(e) = write_exports(out_dir, &exports) {
        eprintln!("serve: exporter error: {e}");
        return ExitCode::from(1);
    }
    println!(
        "serve: {}x saturation, {} cycles, {} spans ({} dropped)",
        RATE,
        report.metrics.cycle_latency.count(),
        snap.spans.len(),
        snap.spans_dropped,
    );
    println!(
        "serve: wrote trace.jsonl, chrome_trace.json, metrics.prom under {}",
        out_dir.display()
    );
    println!();
    print_summary(&report);

    if !check_mode {
        return ExitCode::SUCCESS;
    }
    // Second same-seed run: the sim-domain exports must be byte-identical.
    let second = export(&run_once());
    let failures = check(&report, &snap, &exports, &second);
    if failures.is_empty() {
        println!("\nserve --check: OK");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("serve --check: FAIL: {f}");
        }
        ExitCode::from(1)
    }
}
