//! TetriSched — a Rust reproduction of "TetriSched: global rescheduling with
//! adaptive plan-ahead in dynamic heterogeneous clusters" (EuroSys 2016).
//!
//! This facade crate re-exports every workspace crate under one roof:
//!
//! - [`milp`] — the MILP solver substrate (replaces IBM CPLEX),
//! - [`strl`] — the Space-Time Request Language,
//! - [`cluster`] — cluster topology, equivalence sets, allocation ledger,
//! - [`reservation`] — Rayon-like reservation/admission control,
//! - [`sim`] — the discrete-event cluster simulator,
//! - [`baseline`] — the YARN CapacityScheduler baseline,
//! - [`core`] — the TetriSched scheduler itself (STRL generation,
//!   STRL-to-MILP compilation, plan-ahead, global scheduling),
//! - [`workloads`] — trace-derived and synthetic workload generators,
//! - [`mod@bench`] — the experiment harness regenerating the paper's figures,
//! - [`mod@lint`] — STRL/MILP semantic diagnostics and the workspace
//!   invariant linter (`srclint`).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.
//!
//! # Examples
//!
//! Schedule the paper's Fig. 3 soft-constraint request on the Fig. 1 toy
//! cluster, end to end:
//!
//! ```
//! use tetrisched::cluster::{Attr, Cluster, NodeSet, PartitionSet};
//! use tetrisched::core::{compile, CompileInput};
//! use tetrisched::milp::SolverConfig;
//! use tetrisched::strl::StrlExpr;
//!
//! let cluster = Cluster::fig1_toy();
//! let gpus = cluster.nodes_with_attr(&Attr::gpu());
//! let all = cluster.all_nodes();
//! // 2 GPU nodes for 2s (worth 4) or any 2 nodes for 3s (worth 3).
//! let expr = StrlExpr::max([
//!     StrlExpr::nck(gpus.clone(), 2, 0, 2, 4.0),
//!     StrlExpr::nck(all.clone(), 2, 0, 3, 3.0),
//! ]);
//! let partitions = PartitionSet::refine(cluster.num_nodes(), &[gpus, all]);
//! let input = CompileInput {
//!     expr: &expr,
//!     partitions: &partitions,
//!     now: 0,
//!     quantum: 1,
//!     n_slices: 4,
//! };
//! let compiled = compile(&input, &|set: &NodeSet, _| set.len()).unwrap();
//! let sol = compiled.model.solve(&SolverConfig::exact()).unwrap();
//! assert_eq!(sol.objective, 4.0); // the GPU option wins
//! ```

pub use lint;
pub use tetrisched_baseline as baseline;
pub use tetrisched_bench as bench;
pub use tetrisched_cluster as cluster;
pub use tetrisched_core as core;
pub use tetrisched_milp as milp;
pub use tetrisched_reservation as reservation;
pub use tetrisched_service as service;
pub use tetrisched_sim as sim;
pub use tetrisched_strl as strl;
pub use tetrisched_workloads as workloads;
