//! Property tests for the fault layer: fault-plan generation is a pure
//! function of its configuration, whole simulations under churn stay
//! deterministic, and the allocation ledger's conservation invariant
//! (`free + allocated + down == total`) survives arbitrary interleavings
//! of allocation, release, failure, and repair.

use proptest::prelude::*;
use tetrisched::cluster::{AllocHandle, Cluster, Ledger, NodeId, NodeSet};
use tetrisched::core::{TetriSched, TetriSchedConfig};
use tetrisched::sim::{
    FaultConfig, FaultPlan, JobId, JobSpec, JobType, RetryPolicy, SimConfig, Simulator,
};

fn arb_fault_config() -> impl Strategy<Value = FaultConfig> {
    (0u64..1000, 50.0f64..2000.0, 5.0f64..200.0, 200u64..3000).prop_map(
        |(seed, mtbf, mttr, horizon)| FaultConfig {
            seed,
            mtbf,
            mttr,
            horizon,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed and parameters => bit-identical fault plan; the events
    /// are sorted, alternate per node, and respect the horizon.
    #[test]
    fn fault_plan_is_deterministic(cfg in arb_fault_config(), nodes in 1usize..48) {
        let a = FaultPlan::generate(nodes, &cfg);
        let b = FaultPlan::generate(nodes, &cfg);
        prop_assert_eq!(a.events(), b.events());
        for w in a.events().windows(2) {
            prop_assert!((w[0].at, w[0].node.0) <= (w[1].at, w[1].node.0));
        }
        for e in a.events() {
            prop_assert!(e.at < cfg.horizon);
            prop_assert!((e.node.index()) < nodes);
        }
    }

    /// A different seed changes the plan (except in the rare case that
    /// both horizons elapse before any failure fires).
    #[test]
    fn fault_plan_seed_matters(cfg in arb_fault_config(), nodes in 4usize..32) {
        let a = FaultPlan::generate(nodes, &cfg);
        let b = FaultPlan::generate(nodes, &FaultConfig { seed: cfg.seed ^ 0xdead_beef, ..cfg });
        if !a.is_empty() || !b.is_empty() {
            prop_assert_ne!(a.events(), b.events());
        }
    }
}

/// Ledger op encoded for the conservation property.
#[derive(Debug, Clone)]
enum LedgerOp {
    Down(u32),
    Up(u32),
    Alloc(u64, u32),
    Release(u64),
}

fn arb_op(nodes: u32, handles: u64) -> impl Strategy<Value = LedgerOp> {
    prop_oneof![
        (0..nodes).prop_map(LedgerOp::Down),
        (0..nodes).prop_map(LedgerOp::Up),
        (0..handles, 0..nodes).prop_map(|(h, n)| LedgerOp::Alloc(h, n)),
        (0..handles).prop_map(LedgerOp::Release),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conservation holds after every op in an arbitrary sequence. Ops may
    /// individually fail (allocating a down node, releasing an unknown
    /// handle) — errors are expected; corruption is not.
    #[test]
    fn ledger_conserves_nodes_under_random_ops(
        ops in proptest::collection::vec(arb_op(12, 6), 1..80),
    ) {
        const N: usize = 12;
        let mut ledger = Ledger::new(N);
        for op in &ops {
            match op {
                LedgerOp::Down(n) => {
                    let _ = ledger.mark_down(NodeId(*n));
                }
                LedgerOp::Up(n) => ledger.mark_up(NodeId(*n)),
                LedgerOp::Alloc(h, n) => {
                    let set = NodeSet::from_ids(N, [NodeId(*n)]);
                    let _ = ledger.allocate(AllocHandle(*h), set, 100);
                }
                LedgerOp::Release(h) => {
                    let _ = ledger.release(AllocHandle(*h));
                }
            }
            if let Err(e) = ledger.validate() {
                prop_assert!(false, "after {:?}: {}", op, e);
            }
            prop_assert_eq!(
                ledger.free_nodes().len() + ledger.busy_count() + ledger.down_count(),
                N
            );
        }
    }
}

fn mini_jobs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            id: JobId(i as u64),
            submit: (i as u64) * 7 % 40,
            job_type: if i % 3 == 0 {
                JobType::Gpu
            } else {
                JobType::Unconstrained
            },
            k: 1 + (i as u32 % 3),
            base_runtime: 10 + (i as u64 * 13) % 30,
            slowdown: 1.5,
            deadline: if i % 2 == 0 {
                Some((i as u64) * 7 % 40 + 200)
            } else {
                None
            },
            estimate_error: 0.0,
        })
        .collect()
}

proptest! {
    // Whole simulations under churn are costly; a handful of cases is
    // plenty to catch nondeterminism.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Identical workload + fault plan => identical outcomes and fault
    /// metrics, run to run.
    #[test]
    fn churn_simulation_is_deterministic(seed in 0u64..500) {
        let cluster = Cluster::uniform(2, 4, 1);
        let faults = FaultPlan::generate(
            cluster.num_nodes(),
            &FaultConfig { seed, mtbf: 150.0, mttr: 20.0, horizon: 600 },
        );
        let config = SimConfig {
            faults,
            retry: RetryPolicy { max_retries: 2, backoff_base: 4, backoff_cap: 32 },
            strict_accounting: true,
            ..SimConfig::default()
        };
        let run = || {
            Simulator::new(
                cluster.clone(),
                TetriSched::new(TetriSchedConfig::full(16)),
                config.clone(),
            )
            .run(mini_jobs(8))
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(&a.outcomes, &b.outcomes);
        prop_assert_eq!(a.metrics.evictions, b.metrics.evictions);
        prop_assert_eq!(a.metrics.retries, b.metrics.retries);
        prop_assert_eq!(a.metrics.abandoned_after_retries, b.metrics.abandoned_after_retries);
        prop_assert_eq!(a.metrics.down_node_seconds, b.metrics.down_node_seconds);
        prop_assert_eq!(a.metrics.incomplete, 0);
    }
}
