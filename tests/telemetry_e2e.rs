//! End-to-end telemetry properties over full simulator runs:
//!
//! - the JSONL / Chrome-trace / Prometheus exports are byte-identical
//!   across two same-seed runs (the clock-injection design goal),
//! - enabling telemetry changes no scheduling decision,
//! - every pipeline phase records spans on a telemetry-enabled run,
//! - an undersized trace ring accounts for exactly what it dropped.

use std::time::Duration;

use tetrisched::cluster::Cluster;
use tetrisched::core::{TetriSched, TetriSchedConfig};
use tetrisched::sim::{SimConfig, SimReport, Simulator, TelemetryConfig};
use tetrisched::workloads::{GridmixConfig, Workload, WorkloadBuilder};

/// A short deterministic run. The generous solver budget matters: the MILP
/// wall-clock cutoff is the one nondeterministic input, so no solve may
/// reach it if two runs are to be comparable.
fn run(telemetry_on: bool, trace_capacity: usize) -> SimReport {
    let cluster = Cluster::uniform(2, 8, 1);
    let jobs = WorkloadBuilder::new(GridmixConfig {
        seed: 11,
        num_jobs: 16,
        cluster_size: cluster.num_nodes(),
        ..GridmixConfig::default()
    })
    .generate(Workload::GsMix);
    let config = TetriSchedConfig {
        lint_models: true,
        certify_solves: true,
        solver_time_limit: Duration::from_secs(120),
        ..TetriSchedConfig::full(8)
    };
    Simulator::new(
        cluster,
        TetriSched::new(config),
        SimConfig {
            horizon: Some(3000),
            trace: true,
            trace_capacity,
            telemetry: if telemetry_on {
                TelemetryConfig::on()
            } else {
                TelemetryConfig::default()
            },
            ..SimConfig::default()
        },
    )
    .run(jobs)
}

#[test]
fn exports_are_byte_identical_across_same_seed_runs() {
    let a = run(true, 1 << 16);
    let b = run(true, 1 << 16);
    assert!(
        a.metrics.cycle_latency.count() > 0,
        "run produced no cycles"
    );
    assert_eq!(a.telemetry.to_jsonl(false), b.telemetry.to_jsonl(false));
    assert_eq!(a.telemetry.to_chrome_trace(), b.telemetry.to_chrome_trace());
    assert_eq!(
        a.telemetry.to_prometheus(false),
        b.telemetry.to_prometheus(false)
    );
}

#[test]
fn telemetry_does_not_change_decisions() {
    let on = run(true, 1 << 16);
    let off = run(false, 1 << 16);
    assert_eq!(on.end_time, off.end_time);
    assert_eq!(on.outcomes, off.outcomes);
    assert_eq!(on.classes, off.classes);
    let (m_on, m_off) = (&on.metrics, &off.metrics);
    assert_eq!(m_on.preemptions, m_off.preemptions);
    assert_eq!(m_on.abandoned, m_off.abandoned);
    assert_eq!(m_on.solver_fallbacks, m_off.solver_fallbacks);
    assert_eq!(m_on.lint_errors, m_off.lint_errors);
    assert_eq!(m_on.certificates_verified, m_off.certificates_verified);
    assert_eq!(m_on.warm_start_hits, m_off.warm_start_hits);
    assert_eq!(m_on.warm_start_misses, m_off.warm_start_misses);
    assert_eq!(m_on.presolve_reductions, m_off.presolve_reductions);
    assert_eq!(
        m_on.cycle_latency.count(),
        m_off.cycle_latency.count(),
        "same number of scheduling cycles"
    );
    // The disabled registry records nothing at all.
    assert_eq!(off.telemetry.span_count(), 0);
    assert_eq!(off.telemetry.snapshot().counters.len(), 0);
}

#[test]
fn every_pipeline_phase_records_spans() {
    let report = run(true, 1 << 16);
    let snap = report.telemetry.snapshot();
    for phase in [
        "cycle", "collect", "strl_gen", "lint", "compile", "solve", "certify", "decode",
    ] {
        assert!(
            snap.spans.iter().any(|s| s.name == phase),
            "no spans recorded for phase `{phase}`"
        );
    }
    assert_eq!(snap.spans_dropped, 0, "span capacity was large enough");
    // Solver internals surfaced as counters.
    for counter in ["milp.lp_iterations", "milp.bb_nodes", "sim.launches"] {
        assert!(
            report.telemetry.counter(counter) > 0,
            "counter `{counter}` never incremented"
        );
    }
}

#[test]
fn undersized_trace_ring_accounts_for_drops() {
    let full = run(true, 1 << 16);
    let recorded = full.trace.recorded();
    assert!(
        recorded > 8,
        "scenario too small to exercise the ring ({recorded} events)"
    );
    assert_eq!(full.trace.dropped(), 0);
    assert_eq!(full.metrics.trace_events_dropped, 0);

    let small = run(true, 4);
    assert_eq!(small.trace.recorded(), recorded, "same events either way");
    assert_eq!(small.trace.events().len(), 4, "ring keeps exactly capacity");
    assert_eq!(small.trace.dropped(), recorded - 4);
    assert_eq!(small.metrics.trace_events_dropped, recorded - 4);
    assert_eq!(
        small.telemetry.counter("sim.trace_events_dropped"),
        recorded - 4
    );
    // The retained window is the trace suffix.
    let all: Vec<_> = full.trace.events().to_vec();
    assert_eq!(small.trace.events(), &all[all.len() - 4..]);
}
