//! Solve-level certificate properties: every terminal solver status must
//! carry a certificate that verifies, and the STRL→MILP translation must
//! round-trip exactly for trees without relaxed operators.

use proptest::prelude::*;
use tetrisched::cluster::{NodeId, NodeSet, PartitionSet};
use tetrisched::core::{compile, CompileInput};
use tetrisched::lint::{certify_solution, validate_translation};
use tetrisched::milp::{Model, Sense, SolveStatus, SolverConfig, VarKind};
use tetrisched::strl::StrlExpr;

fn audited() -> SolverConfig {
    SolverConfig::exact().with_audit(true)
}

/// A random mixed-integer model. `Ge` demand rows can exceed what the box
/// admits, so both feasible and infeasible instances are generated.
#[derive(Debug, Clone)]
struct RandomMilp {
    obj: Vec<f64>,
    kinds: Vec<u8>,
    ub: Vec<f64>,
    caps: Vec<(Vec<f64>, f64)>,
    demand: Option<(Vec<f64>, f64)>,
}

fn random_milp() -> impl Strategy<Value = RandomMilp> {
    (2usize..6).prop_flat_map(|n| {
        (
            proptest::collection::vec(-3.0..6.0f64, n),
            proptest::collection::vec(0u8..3, n),
            proptest::collection::vec(1.0..4.0f64, n),
            proptest::collection::vec(
                (proptest::collection::vec(0.0..3.0f64, n), 1.0..10.0f64),
                1..4,
            ),
            proptest::option::of((proptest::collection::vec(0.0..2.0f64, n), 0.5..24.0f64)),
        )
            .prop_map(|(obj, kinds, ub, caps, demand)| RandomMilp {
                obj,
                kinds,
                ub,
                caps,
                demand,
            })
    })
}

fn build(milp: &RandomMilp) -> Model {
    let mut m = Model::maximize();
    let vars: Vec<_> = milp
        .obj
        .iter()
        .zip(&milp.kinds)
        .zip(&milp.ub)
        .enumerate()
        .map(|(j, ((&obj, &kind), &ub))| {
            let kind = match kind {
                0 => VarKind::Binary,
                1 => VarKind::Integer,
                _ => VarKind::Continuous,
            };
            m.add_var(format!("x{j}"), kind, 0.0, ub, obj)
        })
        .collect();
    for (i, (coeffs, rhs)) in milp.caps.iter().enumerate() {
        m.add_constraint(
            format!("cap{i}"),
            vars.iter().cloned().zip(coeffs.iter().cloned()),
            Sense::Le,
            *rhs,
        );
    }
    if let Some((coeffs, rhs)) = &milp.demand {
        m.add_constraint(
            "demand",
            vars.iter().cloned().zip(coeffs.iter().cloned()),
            Sense::Ge,
            *rhs,
        );
    }
    m
}

/// One placement option: `(k, start, dur, value, linear)`.
type JobOption = (u32, u64, u64, f64, bool);

/// A random relaxation-free STRL tree (`sum` of per-job `max` choices over
/// `nck`/`lnck` leaves) plus the cluster capacity it compiles against.
#[derive(Debug, Clone)]
struct RandomStrl {
    cap: usize,
    jobs: Vec<Vec<JobOption>>,
}

fn random_strl() -> impl Strategy<Value = RandomStrl> {
    (3usize..6).prop_flat_map(|cap| {
        (
            Just(cap),
            proptest::collection::vec(
                proptest::collection::vec(
                    (
                        1..cap as u32 + 1,
                        0u64..3,
                        1u64..4,
                        0.5..8.0f64,
                        proptest::bool::ANY,
                    ),
                    1..4,
                ),
                1..4,
            ),
        )
            .prop_map(|(cap, jobs)| RandomStrl { cap, jobs })
    })
}

fn build_expr(strl: &RandomStrl) -> StrlExpr {
    let all = NodeSet::from_ids(strl.cap, (0..strl.cap as u32).map(NodeId));
    StrlExpr::sum(strl.jobs.iter().map(|options| {
        StrlExpr::max(options.iter().map(|&(k, start, dur, value, linear)| {
            if linear {
                StrlExpr::lnck(all.clone(), k, start, dur, value)
            } else {
                StrlExpr::nck(all.clone(), k, start, dur, value)
            }
        }))
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the terminal status, an audited solve self-certifies and
    /// re-verifies independently: Optimal and Infeasible claims both carry
    /// checkable proofs.
    #[test]
    fn every_terminal_status_certifies(milp in random_milp()) {
        let m = build(&milp);
        let sol = m.solve(&audited()).unwrap();
        prop_assert!(
            matches!(sol.status, SolveStatus::Optimal | SolveStatus::Infeasible),
            "exact solve must settle: {:?}", sol.status
        );
        prop_assert!(sol.stats.certificates_verified > 0, "solver did not self-certify");
        prop_assert_eq!(sol.stats.certificate_failures, 0, "self-certification failed");
        let report = certify_solution(&m, &sol);
        prop_assert!(
            report.passed(),
            "independent re-verification failed: {:?}", report.diagnostics
        );
    }

    /// Compiling a relaxation-free STRL tree and decoding the solution
    /// back yields a placement whose STRL valuation equals the MILP
    /// objective, under the proven bound.
    #[test]
    fn translation_round_trips_exactly(strl in random_strl()) {
        let expr = build_expr(&strl);
        let all = NodeSet::from_ids(strl.cap, (0..strl.cap as u32).map(NodeId));
        let partitions = PartitionSet::refine(strl.cap, std::slice::from_ref(&all));
        let input = CompileInput {
            expr: &expr,
            partitions: &partitions,
            now: 0,
            quantum: 1,
            n_slices: 8,
        };
        let cap = strl.cap;
        let compiled = compile(&input, &move |_, _| cap).unwrap();
        let sol = compiled.model.solve(&audited()).unwrap();
        prop_assert_eq!(sol.status, SolveStatus::Optimal, "free root: always feasible");
        let granted = compiled.granted(&sol);
        let valuation = validate_translation(&expr, &granted, sol.objective, sol.stats.best_bound)
            .map_err(|d| TestCaseError::fail(format!("translation validation: {d}")))?;
        prop_assert!(
            (valuation - sol.objective).abs() <= 1e-6 * (1.0 + valuation.abs()),
            "valuation {} vs objective {}", valuation, sol.objective
        );
    }
}
