//! Cross-crate integration tests: full scheduler stacks on full workloads.

use tetrisched::baseline::CapacityScheduler;
use tetrisched::cluster::Cluster;
use tetrisched::core::{TetriSched, TetriSchedConfig};
use tetrisched::sim::{SimConfig, SimReport, Simulator};
use tetrisched::workloads::{GridmixConfig, Workload, WorkloadBuilder};

fn workload(
    seed: u64,
    n: usize,
    cluster: &Cluster,
    w: Workload,
    err: f64,
) -> Vec<tetrisched::sim::JobSpec> {
    WorkloadBuilder::new(GridmixConfig {
        seed,
        num_jobs: n,
        cluster_size: cluster.num_nodes(),
        ..GridmixConfig::default()
    })
    .with_estimate_error(w, err)
}

fn run_ts(
    cluster: &Cluster,
    cfg: TetriSchedConfig,
    jobs: Vec<tetrisched::sim::JobSpec>,
) -> SimReport {
    Simulator::new(cluster.clone(), TetriSched::new(cfg), SimConfig::default()).run(jobs)
}

fn run_cs(cluster: &Cluster, jobs: Vec<tetrisched::sim::JobSpec>) -> SimReport {
    Simulator::new(
        cluster.clone(),
        CapacityScheduler::paper_default(),
        SimConfig::default(),
    )
    .run(jobs)
}

/// The headline comparison: on a heterogeneous SLO mix with runtime
/// mis-estimation, Rayon/TetriSched attains more SLOs than Rayon/CS.
#[test]
fn tetrisched_beats_capacity_scheduler_on_het_mix() {
    let cluster = Cluster::uniform(4, 5, 1);
    let jobs = workload(3, 30, &cluster, Workload::GsHet, -0.2);
    let ts = run_ts(&cluster, TetriSchedConfig::default(), jobs.clone());
    let cs = run_cs(&cluster, jobs);
    assert!(
        ts.metrics.total_slo_attainment() > cs.metrics.total_slo_attainment(),
        "TetriSched {}% vs CS {}%",
        ts.metrics.total_slo_attainment(),
        cs.metrics.total_slo_attainment()
    );
}

/// Best-effort latency is lower under TetriSched as well (Fig. 6(d)).
#[test]
fn tetrisched_lowers_best_effort_latency() {
    let cluster = Cluster::uniform(4, 5, 0);
    let jobs = workload(5, 30, &cluster, Workload::GrMix, -0.2);
    let ts = run_ts(&cluster, TetriSchedConfig::default(), jobs.clone());
    let cs = run_cs(&cluster, jobs);
    assert!(ts.metrics.be_completed > 0 && cs.metrics.be_completed > 0);
    assert!(
        ts.metrics.be_mean_latency() < cs.metrics.be_mean_latency(),
        "TetriSched {}s vs CS {}s",
        ts.metrics.be_mean_latency(),
        cs.metrics.be_mean_latency()
    );
}

/// Under heavy under-estimation the baseline demotes accepted SLO jobs to
/// the best-effort queue, while TetriSched stays robust (Fig. 6(b)).
#[test]
fn robustness_to_underestimation() {
    let cluster = Cluster::uniform(4, 5, 0);
    let jobs = workload(7, 24, &cluster, Workload::GrSlo, -0.5);
    let ts = run_ts(&cluster, TetriSchedConfig::default(), jobs.clone());
    let cs = run_cs(&cluster, jobs);
    assert!(
        ts.metrics.accepted_slo_attainment() >= cs.metrics.accepted_slo_attainment(),
        "TetriSched {}% vs CS {}%",
        ts.metrics.accepted_slo_attainment(),
        cs.metrics.accepted_slo_attainment()
    );
    assert!(ts.metrics.accepted_slo_attainment() >= 80.0);
}

/// All four Table 2 configurations run the same workload to completion and
/// account for every job.
#[test]
fn all_table2_variants_complete() {
    let cluster = Cluster::uniform(4, 5, 1);
    let jobs = workload(9, 20, &cluster, Workload::GsHet, 0.0);
    for cfg in [
        TetriSchedConfig::full(48),
        TetriSchedConfig::no_heterogeneity(48),
        TetriSchedConfig::no_global(48),
        TetriSchedConfig::no_plan_ahead(),
    ] {
        let name = cfg.variant_name();
        let report = run_ts(&cluster, cfg, jobs.clone());
        let m = &report.metrics;
        assert_eq!(
            m.accepted_slo_total + m.nores_slo_total + m.be_total,
            20,
            "{name}: all jobs accounted"
        );
        assert_eq!(m.incomplete, 0, "{name}: no stuck jobs");
        assert_eq!(m.preemptions, 0, "{name}: TetriSched never preempts");
    }
}

/// Reservation admission classifies jobs identically under both stacks
/// (both use the same Rayon frontend).
#[test]
fn admission_is_stack_independent() {
    let cluster = Cluster::uniform(2, 5, 0);
    let jobs = workload(11, 20, &cluster, Workload::GsMix, 0.0);
    let ts = run_ts(&cluster, TetriSchedConfig::default(), jobs.clone());
    let cs = run_cs(&cluster, jobs);
    assert_eq!(ts.metrics.accepted_slo_total, cs.metrics.accepted_slo_total);
    assert_eq!(ts.metrics.nores_slo_total, cs.metrics.nores_slo_total);
    for (id, class) in &ts.classes {
        assert_eq!(class, &cs.classes[id], "class mismatch for {id:?}");
    }
}

/// The extension GS AVAIL mixture (with anti-affine availability services)
/// runs to completion under both stacks and TetriSched still wins.
#[test]
fn availability_mixture_end_to_end() {
    let cluster = Cluster::uniform(4, 5, 2);
    let jobs = workload(19, 24, &cluster, Workload::GsAvail, -0.2);
    assert!(jobs
        .iter()
        .any(|j| j.job_type == tetrisched::sim::JobType::Availability));
    let ts = run_ts(&cluster, TetriSchedConfig::default(), jobs.clone());
    let cs = run_cs(&cluster, jobs);
    let m = &ts.metrics;
    assert_eq!(
        m.accepted_slo_total + m.nores_slo_total + m.be_total,
        24,
        "all jobs terminal under TetriSched"
    );
    assert!(
        ts.metrics.total_slo_attainment() >= cs.metrics.total_slo_attainment(),
        "TetriSched {}% vs CS {}%",
        ts.metrics.total_slo_attainment(),
        cs.metrics.total_slo_attainment()
    );
}

/// Determinism: identical runs produce identical outcomes.
#[test]
fn simulation_is_deterministic() {
    let cluster = Cluster::uniform(4, 5, 1);
    let jobs = workload(13, 20, &cluster, Workload::GsHet, 0.1);
    let a = run_ts(&cluster, TetriSchedConfig::default(), jobs.clone());
    let b = run_ts(&cluster, TetriSchedConfig::default(), jobs);
    assert_eq!(a.end_time, b.end_time);
    for (id, out) in &a.outcomes {
        assert_eq!(out, &b.outcomes[id], "outcome mismatch for {id:?}");
    }
}

/// Over-estimation wastes capacity under the baseline (early reservation
/// release, preemption churn) but TetriSched keeps utilizing it.
#[test]
fn overestimation_keeps_tetrisched_effective() {
    let cluster = Cluster::uniform(4, 5, 0);
    let jobs = workload(17, 24, &cluster, Workload::GsMix, 0.5);
    let ts = run_ts(&cluster, TetriSchedConfig::default(), jobs.clone());
    let cs = run_cs(&cluster, jobs);
    assert!(ts.metrics.total_slo_attainment() >= cs.metrics.total_slo_attainment());
}
