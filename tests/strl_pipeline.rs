//! Integration of the STRL pipeline: text -> parse -> simplify ->
//! partition refinement -> MILP compile -> solve -> extract.

use tetrisched::cluster::{NodeSet, PartitionSet};
use tetrisched::core::{compile, CompileInput};
use tetrisched::milp::SolverConfig;
use tetrisched::strl::{parse, simplify, StrlExpr};

fn pipeline(text: &str, universe: usize, cap: usize) -> (f64, usize) {
    let expr = simplify(parse(text, universe).expect("parse"));
    let mut sets = Vec::new();
    expr.visit(&mut |e| {
        if let StrlExpr::NCk { set, .. } | StrlExpr::LnCk { set, .. } = e {
            sets.push(set.clone());
        }
    });
    let partitions = PartitionSet::refine(universe, &sets);
    let input = CompileInput {
        expr: &expr,
        partitions: &partitions,
        now: 0,
        quantum: 1,
        n_slices: 16,
    };
    let avail = move |_: &NodeSet, _| cap;
    let compiled = compile(&input, &avail).expect("compile");
    let sol = compiled.model.solve(&SolverConfig::exact()).expect("solve");
    (sol.objective, compiled.chosen(&sol).len())
}

#[test]
fn textual_fig3_schedules_on_gpus() {
    let (obj, chosen) = pipeline(
        "max(nCk({M0, M1}, k=2, s=0, dur=2, v=4), \
             nCk({M0, M1, M2, M3}, k=2, s=0, dur=3, v=3))",
        4,
        4,
    );
    assert_eq!(obj, 4.0);
    assert_eq!(chosen, 1);
}

#[test]
fn textual_global_batch() {
    // Two jobs, each 3 of 4 nodes at t=0: only one fits; the other's
    // deferred replica at t=5 carries slightly less value.
    let (obj, chosen) = pipeline(
        "sum(max(nCk({M0, M1, M2, M3}, k=3, s=0, dur=5, v=2), \
                 nCk({M0, M1, M2, M3}, k=3, s=5, dur=5, v=1.9)), \
             max(nCk({M0, M1, M2, M3}, k=3, s=0, dur=5, v=2), \
                 nCk({M0, M1, M2, M3}, k=3, s=5, dur=5, v=1.9)))",
        4,
        4,
    );
    assert!((obj - 3.9).abs() < 1e-9, "one now + one deferred: {obj}");
    assert_eq!(chosen, 2);
}

#[test]
fn simplify_culls_before_compile() {
    // The second branch is infeasible (k > |set|) and is culled by
    // simplify; the pipeline still solves the remaining branch.
    let (obj, chosen) = pipeline(
        "max(nCk({M0}, k=1, s=0, dur=2, v=1), nCk({M1}, k=5, s=0, dur=2, v=9))",
        4,
        4,
    );
    assert_eq!(obj, 1.0);
    assert_eq!(chosen, 1);
}

#[test]
fn anti_affinity_with_barrier_threshold() {
    // Both rack legs must be satisfied and the total must reach the
    // barrier threshold.
    let (obj, _) = pipeline(
        "barrier(3, min(nCk({M0, M1}, k=1, s=0, dur=2, v=3), \
                        nCk({M2, M3}, k=1, s=0, dur=2, v=3)))",
        4,
        4,
    );
    assert_eq!(obj, 3.0);
}

#[test]
fn scaled_linear_leaf_partial_value() {
    // LnCk over 4 nodes asking 8, scaled by 2: value 2 * (4/8) * 6 = 6.
    let (obj, chosen) = pipeline(
        "scale(2, LnCk({M0, M1, M2, M3}, k=8, s=0, dur=2, v=6))",
        4,
        4,
    );
    assert!((obj - 6.0).abs() < 1e-9, "obj {obj}");
    assert_eq!(chosen, 1);
}
