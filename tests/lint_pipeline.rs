//! Property tests tying the lint engines to the generator/compiler/solver
//! pipeline:
//!
//! 1. Every STRL expression the generator emits for a random job — and the
//!    MILP model the compiler builds from it — is lint-clean at Error
//!    severity (the analyses encode real invariants of the emitters).
//! 2. Lint-clean models never make the solver panic or error: Error-free
//!    analysis is a sufficient pre-flight check before `solve()`.
//! 3. End-to-end, a simulation with the `lint_models` knob enabled counts
//!    zero lint rejections.

use proptest::prelude::*;
use tetrisched::cluster::{Cluster, NodeSet, PartitionSet};
use tetrisched::core::{compile, CompileInput, StrlGenerator, TetriSched, TetriSchedConfig};
use tetrisched::lint::{has_errors, lint_expr, lint_model, StrlLintContext};
use tetrisched::milp::{Model, Sense, SolverConfig, VarKind};
use tetrisched::sim::{JobId, JobSpec, JobType, PendingJob, SimConfig, Simulator};
use tetrisched::strl::{JobClass, StrlExpr};

fn spec(i: u64, j: &MiniJob) -> JobSpec {
    JobSpec {
        id: JobId(i),
        submit: 0,
        job_type: match j.job_type {
            0 => JobType::Unconstrained,
            1 => JobType::Gpu,
            2 => JobType::Mpi,
            _ => JobType::Availability,
        },
        k: j.k,
        base_runtime: j.runtime,
        slowdown: if j.job_type == 0 { 1.0 } else { 1.5 },
        deadline: j.deadline_slack.map(|s| j.runtime * s as u64 / 4),
        estimate_error: 0.0,
    }
}

#[derive(Debug, Clone)]
struct MiniJob {
    k: u32,
    runtime: u64,
    deadline_slack: Option<u32>, // deadline = runtime * slack / 4
    job_type: u8,
    class: u8,
}

fn arb_job() -> impl Strategy<Value = MiniJob> {
    (
        1u32..6,
        5u64..80,
        prop::option::of(5u32..30),
        0u8..4,
        0u8..3,
    )
        .prop_map(|(k, runtime, deadline_slack, job_type, class)| MiniJob {
            k,
            runtime,
            deadline_slack,
            job_type,
            class,
        })
}

fn class_of(c: u8) -> JobClass {
    match c {
        0 => JobClass::SloAccepted,
        1 => JobClass::SloNoReservation,
        _ => JobClass::BestEffort,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generator-emitted expressions and compiler-emitted models are
    /// lint-clean at Error severity for arbitrary jobs and cycle times.
    #[test]
    fn generated_requests_are_lint_clean(
        jobs in prop::collection::vec(arb_job(), 1..5),
        now_cycle in 0u64..8,
    ) {
        let cluster = Cluster::uniform(4, 3, 1);
        let config = TetriSchedConfig::full(16);
        let now = now_cycle * config.cycle_period;
        let generator = StrlGenerator::new(&config, &cluster);
        let ledger = tetrisched::cluster::Ledger::new(cluster.num_nodes());
        let rack_avail = |s: &NodeSet| ledger.avail_at(s, now);
        let lint_ctx = StrlLintContext {
            now,
            window_end: Some(now + config.n_slices() as u64 * config.cycle_period),
        };

        let mut exprs = Vec::new();
        for (i, j) in jobs.iter().enumerate() {
            let pending = PendingJob {
                spec: spec(i as u64, j),
                class: class_of(j.class),
                reservation: None,
                preemptions: 0,
                weight: 1.0,
            };
            // Jobs whose deadline already passed are culled by the
            // scheduler before linting; mirror that here.
            let req = generator.job_expr(&pending, now, &rack_avail);
            if !req.is_schedulable() {
                continue;
            }
            let diags = lint_expr(&req.expr, &lint_ctx);
            prop_assert!(
                !has_errors(&diags),
                "expr lint errors for job {i}: {}",
                tetrisched::lint::render_pretty(&diags)
            );
            exprs.push(req.expr);
        }
        if exprs.is_empty() {
            return Ok(()); // every job unschedulable; nothing to aggregate
        }

        let mut sets = Vec::new();
        for e in &exprs {
            e.visit(&mut |node| {
                if let StrlExpr::NCk { set, .. } | StrlExpr::LnCk { set, .. } = node {
                    sets.push(set.clone());
                }
            });
        }
        let partitions = PartitionSet::refine(cluster.num_nodes(), &sets);
        let aggregate = StrlExpr::sum(exprs);
        let input = CompileInput {
            expr: &aggregate,
            partitions: &partitions,
            now,
            quantum: config.cycle_period,
            n_slices: config.n_slices(),
        };
        let avail = |set: &NodeSet, t: u64| ledger.avail_at(set, t);
        let compiled = compile(&input, &avail);
        let Ok(compiled) = compiled else {
            return Ok(()); // compile-time culling emptied the model
        };
        let diags = lint_model(&compiled.model);
        prop_assert!(
            !has_errors(&diags),
            "model lint errors: {}",
            tetrisched::lint::render_pretty(&diags)
        );
    }
}

#[derive(Debug, Clone)]
struct MiniModel {
    vars: Vec<(u8, f64, f64, f64)>, // (kind, lb, ub, obj)
    rows: Vec<(Vec<f64>, u8, f64)>, // (coeff per var, sense, rhs)
}

fn arb_model() -> impl Strategy<Value = MiniModel> {
    (1usize..4).prop_flat_map(|n| {
        let vars = prop::collection::vec((0u8..3, -4.0f64..4.0, 0.0f64..6.0, -2.0f64..2.0), n);
        let rows = prop::collection::vec(
            (prop::collection::vec(-3.0f64..3.0, n), 0u8..3, -6.0f64..6.0),
            0..4,
        );
        (vars, rows).prop_map(|(vars, rows)| MiniModel { vars, rows })
    })
}

fn build_model(m: &MiniModel) -> Model {
    let mut model = Model::maximize();
    let ids: Vec<_> = m
        .vars
        .iter()
        .enumerate()
        .map(|(j, &(kind, lb, ub_span, obj))| {
            let kind = match kind {
                0 => VarKind::Continuous,
                1 => VarKind::Integer,
                _ => VarKind::Binary,
            };
            model.add_var(format!("x{j}"), kind, lb, lb + ub_span, obj)
        })
        .collect();
    for (i, (coeffs, sense, rhs)) in m.rows.iter().enumerate() {
        let sense = match sense {
            0 => Sense::Le,
            1 => Sense::Ge,
            _ => Sense::Eq,
        };
        model.add_constraint(
            format!("r{i}"),
            ids.iter().copied().zip(coeffs.iter().copied()),
            sense,
            *rhs,
        );
    }
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A model with no Error-severity lint finding never makes the exact
    /// solver panic or return an error: it either solves or reports an
    /// honest Infeasible/Unbounded status.
    #[test]
    fn lint_clean_models_solve_without_panic(m in arb_model()) {
        let model = build_model(&m);
        let diags = lint_model(&model);
        if has_errors(&diags) {
            return Ok(()); // not lint-clean; out of scope for this property
        }
        let sol = model.solve(&SolverConfig::exact());
        prop_assert!(sol.is_ok(), "solver errored on a lint-clean model: {sol:?}");
    }

    /// Models the linter *certifies* infeasible are indeed reported as
    /// having no solution by the solver (certificates are not just
    /// machine-checkable, they agree with the ground truth).
    #[test]
    fn certified_models_are_truly_infeasible(m in arb_model()) {
        let model = build_model(&m);
        let diags = lint_model(&model);
        let certified = diags.iter().any(|d| d.certificate.is_some());
        if !certified {
            return Ok(()); // no certificate emitted; out of scope
        }
        for d in &diags {
            if let Some(cert) = &d.certificate {
                prop_assert!(cert.verify(&model).is_ok());
            }
        }
        // The solver agrees either by reporting an Infeasible status or by
        // rejecting the model outright (e.g. crossed bounds fail
        // `validate()` before any status can be computed). Both confirm no
        // feasible point exists; only a solution would refute the cert.
        if let Ok(sol) = model.solve(&SolverConfig::exact()) {
            prop_assert!(
                !sol.status.has_solution(),
                "certified-infeasible model produced a solution"
            );
        }
    }
}

/// End-to-end: the on-cycle linter stays silent over a real simulated run,
/// in both the global and greedy variants.
#[test]
fn e2e_lint_models_run_is_clean() {
    let jobs = vec![
        JobSpec {
            id: JobId(0),
            submit: 0,
            job_type: JobType::Gpu,
            k: 2,
            base_runtime: 30,
            slowdown: 2.0,
            deadline: Some(200),
            estimate_error: 0.0,
        },
        JobSpec {
            id: JobId(1),
            submit: 4,
            job_type: JobType::Unconstrained,
            k: 3,
            base_runtime: 25,
            slowdown: 1.0,
            deadline: None,
            estimate_error: 0.0,
        },
        JobSpec {
            id: JobId(2),
            submit: 8,
            job_type: JobType::Mpi,
            k: 3,
            base_runtime: 20,
            slowdown: 2.0,
            deadline: Some(300),
            estimate_error: 0.0,
        },
    ];
    for config in [TetriSchedConfig::full(16), TetriSchedConfig::no_global(16)] {
        let config = TetriSchedConfig {
            lint_models: true,
            ..config
        };
        let report = Simulator::new(
            Cluster::uniform(4, 2, 1),
            TetriSched::new(config),
            SimConfig::default(),
        )
        .run(jobs.clone());
        assert_eq!(report.metrics.lint_errors, 0);
        assert_eq!(report.metrics.incomplete, 0);
    }
}
