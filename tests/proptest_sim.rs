//! Property tests over whole simulations: for random small workloads and
//! both scheduler stacks, structural invariants must hold.

use proptest::prelude::*;
use tetrisched::baseline::CapacityScheduler;
use tetrisched::cluster::Cluster;
use tetrisched::core::{TetriSched, TetriSchedConfig};
use tetrisched::sim::{JobId, JobOutcome, JobSpec, JobType, SimConfig, SimReport, Simulator};

#[derive(Debug, Clone)]
struct MiniJob {
    submit: u64,
    k: u32,
    runtime: u64,
    slo_slack: Option<u32>, // deadline = submit + runtime * slack / 8
    job_type: u8,
    error_pm: i32, // estimate error in percent
}

fn arb_job() -> impl Strategy<Value = MiniJob> {
    (
        0u64..120,
        1u32..5,
        5u64..60,
        prop::option::of(10u32..40),
        0u8..3,
        -60i32..100,
    )
        .prop_map(
            |(submit, k, runtime, slo_slack, job_type, error_pm)| MiniJob {
                submit,
                k,
                runtime,
                slo_slack,
                job_type,
                error_pm,
            },
        )
}

fn to_specs(jobs: &[MiniJob]) -> Vec<JobSpec> {
    jobs.iter()
        .enumerate()
        .map(|(i, j)| JobSpec {
            id: JobId(i as u64),
            submit: j.submit,
            job_type: match j.job_type {
                0 => JobType::Unconstrained,
                1 => JobType::Gpu,
                _ => JobType::Mpi,
            },
            k: j.k,
            base_runtime: j.runtime,
            slowdown: if j.job_type == 0 { 1.0 } else { 1.5 },
            deadline: j.slo_slack.map(|s| j.submit + j.runtime * s as u64 / 8),
            estimate_error: j.error_pm as f64 / 100.0,
        })
        .collect()
}

fn check_invariants(report: &SimReport, n_jobs: usize, name: &str) -> Result<(), TestCaseError> {
    let m = &report.metrics;
    // Every job is classified and terminal (no infinite waits).
    prop_assert_eq!(
        m.accepted_slo_total + m.nores_slo_total + m.be_total,
        n_jobs,
        "{}: class totals",
        name
    );
    prop_assert_eq!(m.incomplete, 0, "{}: incomplete jobs", name);
    // Met counts never exceed totals.
    prop_assert!(m.accepted_slo_met <= m.accepted_slo_total);
    prop_assert!(m.nores_slo_met <= m.nores_slo_total);
    prop_assert!(m.be_completed <= m.be_total);
    // Physical resource accounting.
    prop_assert!(
        m.busy_node_seconds <= m.total_node_seconds,
        "{}: utilization {} > 1",
        name,
        m.utilization()
    );
    // Completed jobs finish no earlier than their true runtime allows.
    for (id, outcome) in &report.outcomes {
        if let JobOutcome::Completed { at, .. } = outcome {
            prop_assert!(*at > 0, "{}: job {:?} completed at 0", name, id);
        }
    }
    Ok(())
}

proptest! {
    // Whole-simulation properties are expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tetrisched_invariants(jobs in proptest::collection::vec(arb_job(), 1..10)) {
        let specs = to_specs(&jobs);
        let cluster = Cluster::uniform(2, 4, 1);
        let report = Simulator::new(
            cluster,
            TetriSched::new(TetriSchedConfig::full(16)),
            SimConfig::default(),
        )
        .run(specs);
        check_invariants(&report, jobs.len(), "tetrisched")?;
        // TetriSched never preempts (paper behaviour).
        prop_assert_eq!(report.metrics.preemptions, 0);
    }

    #[test]
    fn baseline_invariants(jobs in proptest::collection::vec(arb_job(), 1..10)) {
        let specs = to_specs(&jobs);
        let cluster = Cluster::uniform(2, 4, 1);
        let report = Simulator::new(
            cluster,
            CapacityScheduler::paper_default(),
            SimConfig::default(),
        )
        .run(specs);
        check_invariants(&report, jobs.len(), "rayon-cs")?;
        // The baseline never abandons jobs.
        prop_assert_eq!(report.metrics.abandoned, 0);
    }

    #[test]
    fn greedy_and_np_variants_invariants(jobs in proptest::collection::vec(arb_job(), 1..8)) {
        let specs = to_specs(&jobs);
        for cfg in [TetriSchedConfig::no_global(16), TetriSchedConfig::no_plan_ahead()] {
            let report = Simulator::new(
                Cluster::uniform(2, 4, 1),
                TetriSched::new(cfg),
                SimConfig::default(),
            )
            .run(specs.clone());
            check_invariants(&report, jobs.len(), "variant")?;
        }
    }

    #[test]
    fn completed_be_latency_at_least_runtime(
        jobs in proptest::collection::vec(arb_job(), 1..8),
    ) {
        let specs = to_specs(&jobs);
        let cluster = Cluster::uniform(2, 4, 1);
        let report = Simulator::new(
            cluster,
            TetriSched::new(TetriSchedConfig::full(16)),
            SimConfig::default(),
        )
        .run(specs.clone());
        for spec in &specs {
            if let JobOutcome::Completed { at, preferred } = report.outcomes[&spec.id] {
                let min_runtime = spec.true_runtime_for(preferred);
                prop_assert!(
                    at >= spec.submit + min_runtime,
                    "job {:?} completed at {} before submit {} + runtime {}",
                    spec.id, at, spec.submit, min_runtime
                );
            }
        }
    }
}
