//! End-to-end fault-injection acceptance tests: the simulator survives
//! node churn that kills a sizable share of the cluster, every evicted
//! gang retries with bounded exponential backoff until it completes or
//! exhausts its budget, the ledger conservation invariant holds after
//! every event, and a forced global-MILP failure degrades exactly the
//! affected cycle to the greedy placer.

use std::collections::{HashMap, HashSet};

use tetrisched::cluster::Cluster;
use tetrisched::core::{TetriSched, TetriSchedConfig};
use tetrisched::sim::{
    FaultConfig, FaultPlan, JobOutcome, RetryPolicy, SimConfig, SimReport, Simulator, TraceEvent,
};
use tetrisched::workloads::{GridmixConfig, Workload, WorkloadBuilder};

fn workload(seed: u64, n: usize, cluster: &Cluster) -> Vec<tetrisched::sim::JobSpec> {
    WorkloadBuilder::new(GridmixConfig {
        seed,
        num_jobs: n,
        cluster_size: cluster.num_nodes(),
        ..GridmixConfig::default()
    })
    .with_estimate_error(Workload::GsHet, 0.0)
}

fn run_with_faults(
    cluster: &Cluster,
    cfg: TetriSchedConfig,
    jobs: Vec<tetrisched::sim::JobSpec>,
    faults: FaultPlan,
    retry: RetryPolicy,
) -> SimReport {
    let sim_config = SimConfig {
        trace: true,
        faults,
        retry,
        // Conservation (`free + allocated + down == total`) is validated
        // after every event; a violation panics and fails the test.
        strict_accounting: true,
        ..SimConfig::default()
    };
    Simulator::new(cluster.clone(), TetriSched::new(cfg), sim_config).run(jobs)
}

/// The headline robustness test: a churn plan that takes down at least
/// 10% of the nodes. No panic, every job ends terminal, every eviction is
/// followed by a backoff-delayed resubmission or retry exhaustion.
#[test]
fn churn_killing_ten_percent_of_nodes_is_survived() {
    let cluster = Cluster::uniform(4, 5, 1); // 20 nodes
    let num_nodes = cluster.num_nodes();
    // Aggressive MTBF so the plan reliably covers a good share of nodes.
    let faults = FaultPlan::generate(
        num_nodes,
        &FaultConfig {
            seed: 11,
            mtbf: 400.0,
            mttr: 40.0,
            horizon: 2_000,
        },
    );
    let failed: HashSet<_> = faults
        .events()
        .iter()
        .filter(|e| !e.up)
        .map(|e| e.node)
        .collect();
    assert!(
        failed.len() * 10 >= num_nodes,
        "fault plan too tame: only {} of {} nodes fail",
        failed.len(),
        num_nodes
    );

    let retry = RetryPolicy {
        max_retries: 3,
        backoff_base: 8,
        backoff_cap: 64,
    };
    let report = run_with_faults(
        &cluster,
        TetriSchedConfig::default(),
        workload(3, 24, &cluster),
        faults,
        retry,
    );
    let m = &report.metrics;

    // Every job reached a terminal state: completed or abandoned.
    assert_eq!(m.incomplete, 0, "jobs left hanging");
    for (id, outcome) in &report.outcomes {
        assert!(
            matches!(
                outcome,
                JobOutcome::Completed { .. } | JobOutcome::Abandoned { .. }
            ),
            "job {id:?} not terminal: {outcome:?}"
        );
    }

    // Trace-level accounting: evictions and their follow-ups match the
    // metrics, and each resubmission obeys the backoff schedule.
    let mut evicted = 0usize;
    let mut exhausted = 0usize;
    let mut pending_backoff: HashMap<_, _> = HashMap::new();
    for e in report.trace.events() {
        match e {
            TraceEvent::Evicted {
                job, retry: r, at, ..
            } => {
                evicted += 1;
                pending_backoff.insert(*job, (*r, *at));
            }
            TraceEvent::Resubmitted { job, at } => {
                let (r, evict_at) = pending_backoff
                    .remove(job)
                    .expect("resubmission without a preceding eviction");
                assert_eq!(
                    *at,
                    evict_at + retry.delay(r),
                    "job {job:?} retry {r} resubmitted off-schedule"
                );
            }
            TraceEvent::RetriesExhausted { job, .. } => {
                exhausted += 1;
                pending_backoff
                    .remove(job)
                    .expect("exhaustion without a preceding eviction");
            }
            _ => {}
        }
    }
    assert!(
        pending_backoff.is_empty(),
        "evictions with no resubmission or exhaustion: {pending_backoff:?}"
    );
    assert_eq!(m.evictions, evicted, "eviction metric vs trace");
    assert_eq!(m.abandoned_after_retries, exhausted);
    assert!(evicted > 0, "churn this heavy should evict something");
    assert!(m.down_node_seconds > 0);
    assert!(m.availability() < 1.0);
}

/// A forced failure of one global MILP solve degrades exactly that cycle
/// to the greedy placer — work still flows, and the fallback is counted.
#[test]
fn forced_global_solver_failure_degrades_one_cycle() {
    let cluster = Cluster::uniform(2, 5, 1);
    let cfg = TetriSchedConfig {
        chaos_global_solve_failures: vec![1],
        ..TetriSchedConfig::default()
    };
    let report = run_with_faults(
        &cluster,
        cfg,
        workload(7, 12, &cluster),
        FaultPlan::none(),
        RetryPolicy::default(),
    );
    let m = &report.metrics;
    assert_eq!(m.solver_fallbacks, 1, "exactly one fallback");
    assert_eq!(m.degraded_cycles, 1);
    assert!(m.solver_errors >= 1, "chaos error surfaced");
    let degraded: Vec<_> = report
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::CycleDegraded { .. }))
        .collect();
    assert_eq!(degraded.len(), 1, "exactly one degraded cycle in trace");
    assert_eq!(m.incomplete, 0);
    for outcome in report.outcomes.values() {
        assert!(
            matches!(
                outcome,
                JobOutcome::Completed { .. } | JobOutcome::Abandoned { .. }
            ),
            "degraded cycle dropped work: {outcome:?}"
        );
    }
}

/// Churn and chaos together: failures mid-run plus a failing solve. The
/// combination must not deadlock, drop jobs, or break conservation.
#[test]
fn churn_plus_chaos_still_terminates_cleanly() {
    let cluster = Cluster::uniform(4, 5, 1);
    let faults = FaultPlan::generate(
        cluster.num_nodes(),
        &FaultConfig {
            seed: 5,
            mtbf: 600.0,
            mttr: 30.0,
            horizon: 1_500,
        },
    );
    let cfg = TetriSchedConfig {
        chaos_global_solve_failures: vec![2, 4],
        ..TetriSchedConfig::default()
    };
    let report = run_with_faults(
        &cluster,
        cfg,
        workload(9, 18, &cluster),
        faults,
        RetryPolicy::default(),
    );
    assert_eq!(report.metrics.incomplete, 0);
    assert_eq!(report.metrics.solver_fallbacks, 2);
}
