//! Property and golden tests for the degraded-operation layer:
//!
//! - same-seed runs under performance faults are byte-identical
//!   (outcomes, metrics, and telemetry exports);
//! - the degradation-ladder governor never flaps — no two rung changes
//!   closer than its hysteresis window, under arbitrary load sequences;
//! - straggler eviction and speculative re-placement preserve the
//!   allocation ledger's conservation invariant;
//! - a pure fail-stop `FaultPlan` (no perf faults, no straggler defense,
//!   governor disabled) reproduces the pre-degraded-mode engine's golden
//!   digests byte-for-byte.

use proptest::prelude::*;
use tetrisched::bench::{run_spec, RunSpec, SchedulerKind};
use tetrisched::cluster::{Cluster, RackId};
use tetrisched::core::{Governor, GovernorConfig, TetriSched, TetriSchedConfig};
use tetrisched::sim::{
    FaultConfig, FaultPlan, FaultScope, FaultScript, PerfFaultConfig, PerfFaultPlan, RetryPolicy,
    SimConfig, SimReport, Simulator, StragglerConfig, TelemetryConfig,
};
use tetrisched::workloads::{GridmixConfig, Workload, WorkloadBuilder};

fn arb_perf_config() -> impl Strategy<Value = PerfFaultConfig> {
    (
        0u64..1000,
        100.0f64..1500.0,
        20.0f64..200.0,
        1.5f64..4.0,
        300u64..1500,
    )
        .prop_map(|(seed, mtbf, duration, factor, horizon)| PerfFaultConfig {
            seed,
            mtbf,
            duration,
            factor_min: factor,
            factor_max: factor + 2.0,
            horizon,
        })
}

/// A degraded-mode simulation: seeded perf faults, straggler defense on,
/// governor enabled with a budget small enough to exercise the ladder.
fn degraded_run(seed: u64, perf: &PerfFaultPlan) -> SimReport {
    let cluster = Cluster::uniform(2, 4, 1);
    let jobs = WorkloadBuilder::new(GridmixConfig {
        seed,
        num_jobs: 10,
        cluster_size: cluster.num_nodes(),
        target_utilization: 1.2,
        estimate_error: 0.0,
        error_jitter: 0.0,
        slowdown: 1.5,
    })
    .with_estimate_error(Workload::GsMix, 0.0);
    let mut cfg = TetriSchedConfig::full(8);
    cfg.governor = GovernorConfig::defaults();
    cfg.governor.work_budget = 500;
    Simulator::new(
        cluster,
        TetriSched::new(cfg),
        SimConfig {
            trace: true,
            strict_accounting: true,
            perf_faults: perf.clone(),
            stragglers: StragglerConfig::defaults(),
            telemetry: TelemetryConfig::on(),
            horizon: Some(100_000),
            ..SimConfig::default()
        },
    )
    .run(jobs)
}

proptest! {
    // Whole simulations are costly; a handful of cases catches
    // nondeterminism just as well as a thousand.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed and perf-fault plan => byte-identical outcomes and
    /// telemetry exports, run to run.
    #[test]
    fn perf_fault_runs_are_byte_identical(cfg in arb_perf_config(), seed in 0u64..500) {
        let perf = PerfFaultPlan::generate(8, &cfg);
        prop_assert_eq!(
            PerfFaultPlan::generate(8, &cfg).windows(),
            perf.windows(),
            "perf-fault plan generation must be pure"
        );
        let (a, b) = (degraded_run(seed, &perf), degraded_run(seed, &perf));
        prop_assert_eq!(&a.outcomes, &b.outcomes);
        prop_assert_eq!(a.metrics.perf_faulted_nodes, b.metrics.perf_faulted_nodes);
        prop_assert_eq!(a.metrics.stragglers_detected, b.metrics.stragglers_detected);
        prop_assert_eq!(a.metrics.speculative_migrations, b.metrics.speculative_migrations);
        prop_assert_eq!(a.metrics.ladder_rung, b.metrics.ladder_rung);
        prop_assert_eq!(a.metrics.busy_node_seconds, b.metrics.busy_node_seconds);
        prop_assert_eq!(a.end_time, b.end_time);
        prop_assert_eq!(
            a.telemetry.to_jsonl(false),
            b.telemetry.to_jsonl(false),
            "telemetry exports diverged"
        );
    }

    /// Straggler detection and speculative re-placement never corrupt the
    /// ledger: strict accounting validates conservation after every event,
    /// every job still reaches a terminal state, and migrations never
    /// exceed detections.
    #[test]
    fn straggler_migration_preserves_ledger_conservation(
        cfg in arb_perf_config(),
        seed in 0u64..500,
    ) {
        let perf = PerfFaultPlan::generate(8, &cfg);
        let report = degraded_run(seed, &perf);
        prop_assert_eq!(report.metrics.incomplete, 0, "every job terminal");
        prop_assert!(
            report.metrics.speculative_migrations <= report.metrics.stragglers_detected,
            "migrations ({}) exceed detections ({})",
            report.metrics.speculative_migrations,
            report.metrics.stragglers_detected
        );
    }
}

fn arb_governor_config() -> impl Strategy<Value = GovernorConfig> {
    (1u64..5000, 1u32..4, 1u32..8, proptest::bool::ANY).prop_map(
        |(work_budget, promote_streak, hysteresis_cycles, binary)| GovernorConfig {
            work_budget,
            promote_streak,
            hysteresis_cycles,
            binary,
            ..GovernorConfig::defaults()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under arbitrary load sequences the ladder never flaps: between any
    /// two rung changes there are at least `hysteresis_cycles`
    /// observations, and binary mode only ever visits the top and bottom
    /// rungs.
    #[test]
    fn ladder_never_flaps(
        config in arb_governor_config(),
        loads in proptest::collection::vec((0u64..10_000, proptest::bool::ANY), 1..200),
    ) {
        let binary = config.binary;
        let hysteresis = config.hysteresis_cycles;
        let mut governor = Governor::new(config);
        let mut last_change: Option<usize> = None;
        for (i, (work, failed)) in loads.iter().enumerate() {
            let before = governor.rung();
            governor.observe(*work, *failed);
            let after = governor.rung();
            if binary {
                prop_assert!(
                    after.as_u8() == 0 || after.as_u8() == 3,
                    "binary mode visited intermediate rung {}",
                    after.as_u8()
                );
            }
            if after != before {
                // One rung at a time, in either direction.
                prop_assert_eq!(
                    if binary { 3 } else { 1 },
                    after.as_u8().abs_diff(before.as_u8()),
                    "rung moved more than one step"
                );
                if let Some(prev) = last_change {
                    prop_assert!(
                        i - prev >= hysteresis as usize,
                        "rung changed at observations {prev} and {i}, inside the \
                         {hysteresis}-cycle hysteresis window"
                    );
                }
                last_change = Some(i);
            }
        }
    }
}

/// The fail-stop golden scenario from the node-churn robustness work:
/// seeded MTBF/MTTR churn merged with a scripted rack outage. The solver's
/// wall-clock time limit is raised far past what any solve here needs, so
/// truncation can only happen on the deterministic node/gap criteria and
/// the digests are identical across build profiles and machines.
fn fail_stop_spec(workload: Workload, seed: u64) -> RunSpec {
    let cluster = Cluster::uniform(2, 8, 1);
    let generated = FaultPlan::generate(
        cluster.num_nodes(),
        &FaultConfig {
            seed,
            mtbf: 400.0,
            mttr: 40.0,
            horizon: 900,
        },
    );
    let scripted = FaultPlan::from_script(
        &cluster,
        &[FaultScript {
            at: 200,
            duration: 80,
            scope: FaultScope::Rack(RackId(1)),
        }],
    );
    RunSpec {
        workload,
        cluster,
        num_jobs: 24,
        seed,
        estimate_error: 0.0,
        kind: {
            let mut cfg = TetriSchedConfig::full(16);
            cfg.solver_time_limit = std::time::Duration::from_secs(3600);
            SchedulerKind::Tetri(cfg)
        },
        cycle_period: 4,
        utilization: 1.0,
        slowdown: 1.5,
        faults: generated.merge(scripted),
        retry: RetryPolicy::default(),
        perf_faults: PerfFaultPlan::none(),
        stragglers: StragglerConfig::disabled(),
    }
}

fn fail_stop_digest(report: &SimReport) -> String {
    let m = &report.metrics;
    let lat_sum: f64 = m.be_latency.samples().iter().sum();
    format!(
        "slo={}/{} nores={}/{} be={}/{} lat={:.3} busy={} pre={} ab={} inc={} ev={} ret={} end={} cycles={}",
        m.accepted_slo_met,
        m.accepted_slo_total,
        m.nores_slo_met,
        m.nores_slo_total,
        m.be_completed,
        m.be_total,
        lat_sum,
        m.busy_node_seconds,
        m.preemptions,
        m.abandoned,
        m.incomplete,
        m.evictions,
        m.retries,
        report.end_time,
        m.cycle_latency.count()
    )
}

/// Golden digests captured from the engine immediately before the
/// degraded-operation layer landed. A pure fail-stop fault plan — perf
/// faults empty, straggler defense disabled, governor disabled — must
/// reproduce them byte-for-byte: the watermark/progress machinery and the
/// ladder may not perturb healthy or fail-stop-only runs.
#[test]
fn pure_fail_stop_plan_reproduces_pre_degraded_goldens() {
    let goldens = [
        (
            Workload::GsMix,
            3u64,
            "slo=4/12 nores=0/3 be=9/9 lat=6516.000 busy=13268 pre=0 ab=11 inc=0 ev=31 ret=31 end=1234 cycles=309",
        ),
        (
            Workload::GsMix,
            11,
            "slo=8/17 nores=0/1 be=6/6 lat=2785.000 busy=12668 pre=0 ab=10 inc=0 ev=29 ret=29 end=1208 cycles=302",
        ),
        (
            Workload::GsHet,
            3,
            "slo=3/12 nores=0/3 be=9/9 lat=5908.000 busy=12348 pre=0 ab=12 inc=0 ev=31 ret=31 end=1118 cycles=280",
        ),
        (
            Workload::GsHet,
            11,
            "slo=5/17 nores=0/1 be=6/6 lat=2277.000 busy=11032 pre=0 ab=13 inc=0 ev=26 ret=26 end=1292 cycles=323",
        ),
    ];
    for (workload, seed, expected) in goldens {
        let report = run_spec(&fail_stop_spec(workload, seed));
        assert_eq!(
            fail_stop_digest(&report),
            expected,
            "fail-stop divergence for {workload:?} seed {seed}"
        );
    }
}
