//! End-to-end tests for the event-driven service core.
//!
//! Three guarantees, matching the refactor's acceptance criteria:
//!
//! 1. **Closed-loop equivalence** — the refactored engine (Submit routed
//!    through the service core's pass-through) reproduces the decisions of
//!    the pre-refactor batch loop bit-for-bit, pinned by golden metric
//!    digests captured from the pre-refactor engine on a small seed
//!    corpus.
//! 2. **Open-loop determinism** — in service mode, the same seed yields
//!    byte-identical telemetry exports across independent runs.
//! 3. **Backpressure engagement** — at 2× saturation the admission layer
//!    actually defers and sheds (nonzero counters), the conservation law
//!    `admitted + shed + backlog == arrivals` holds, and shed jobs carry
//!    typed outcomes.

use tetrisched::bench::{run_spec, RunSpec, SchedulerKind};
use tetrisched::cluster::Cluster;
use tetrisched::core::TetriSched;
use tetrisched::core::TetriSchedConfig;
use tetrisched::service::{AdmissionPolicy, FairShareConfig, ServiceConfig};
use tetrisched::sim::{
    FaultPlan, JobOutcome, PerfFaultPlan, RetryPolicy, SimConfig, SimReport, Simulator,
    StragglerConfig, TelemetryConfig, TraceEvent,
};
use tetrisched::workloads::{GridmixConfig, OpenLoopConfig, OpenLoopDriver, Workload};

/// A compact, fully deterministic digest of a run's decision-relevant
/// metrics. Any divergence in admission, classification, placement, or
/// timing shows up here.
fn digest(report: &SimReport) -> String {
    let m = &report.metrics;
    let lat_sum: f64 = m.be_latency.samples().iter().sum();
    format!(
        "slo={}/{} nores={}/{} be={}/{} lat={:.3} busy={} pre={} ab={} inc={} end={} cycles={}",
        m.accepted_slo_met,
        m.accepted_slo_total,
        m.nores_slo_met,
        m.nores_slo_total,
        m.be_completed,
        m.be_total,
        lat_sum,
        m.busy_node_seconds,
        m.preemptions,
        m.abandoned,
        m.incomplete,
        report.end_time,
        m.cycle_latency.count()
    )
}

fn corpus_spec(workload: Workload, seed: u64) -> RunSpec {
    RunSpec {
        workload,
        cluster: Cluster::uniform(2, 8, 1),
        num_jobs: 24,
        seed,
        estimate_error: 0.0,
        kind: SchedulerKind::Tetri(TetriSchedConfig::full(16)),
        cycle_period: 4,
        utilization: 1.0,
        slowdown: 1.5,
        faults: FaultPlan::none(),
        retry: RetryPolicy::default(),
        perf_faults: PerfFaultPlan::none(),
        stragglers: StragglerConfig::disabled(),
    }
}

/// Golden digests captured from the pre-refactor engine (before the
/// Submit path was routed through the service core). The refactored
/// closed-loop path must reproduce them exactly.
#[test]
fn closed_loop_reproduces_pre_refactor_decisions() {
    let goldens = [
        (
            Workload::GsMix,
            3,
            "slo=12/12 nores=0/3 be=9/9 lat=3408.000 busy=10648 pre=0 ab=3 inc=0 end=755 cycles=189",
        ),
        (
            Workload::GsMix,
            11,
            "slo=17/17 nores=0/1 be=6/6 lat=1277.000 busy=11568 pre=0 ab=1 inc=0 end=892 cycles=223",
        ),
        (
            Workload::GsHet,
            3,
            "slo=12/12 nores=0/3 be=9/9 lat=3152.000 busy=10444 pre=0 ab=3 inc=0 end=759 cycles=190",
        ),
        (
            Workload::GsHet,
            11,
            "slo=15/17 nores=0/1 be=6/6 lat=941.000 busy=10560 pre=0 ab=3 inc=0 end=901 cycles=226",
        ),
    ];
    for (workload, seed, expected) in goldens {
        let report = run_spec(&corpus_spec(workload, seed));
        assert_eq!(
            digest(&report),
            expected,
            "closed-loop divergence for {workload:?} seed {seed}"
        );
        // Pass-through accounting: every arrival admitted, nothing shed.
        assert_eq!(
            report.metrics.jobs_admitted, 24,
            "closed-loop ingest must admit every arrival"
        );
        assert_eq!(report.metrics.jobs_shed, 0);
        assert_eq!(report.metrics.jobs_deferred, 0);
    }
}

/// An open-loop service-mode run at the given saturation multiplier.
fn open_loop_run(seed: u64, rate_multiplier: f64) -> SimReport {
    let jobs = OpenLoopDriver::new(OpenLoopConfig::saturating(
        GridmixConfig {
            seed,
            num_jobs: 60,
            cluster_size: 16,
            target_utilization: 1.0,
            estimate_error: 0.0,
            error_jitter: 0.0,
            slowdown: 1.5,
        },
        rate_multiplier,
    ))
    .generate(Workload::GsMix);
    let service = ServiceConfig::open(
        4,
        8,
        AdmissionPolicy {
            max_admissions_per_cycle: 4,
            max_scheduler_backlog: 8,
            shed_queue_depth: 16,
        },
        FairShareConfig::enabled(4),
    );
    Simulator::new(
        Cluster::uniform(2, 8, 1),
        TetriSched::new(TetriSchedConfig::full(16)),
        SimConfig {
            horizon: Some(3000),
            trace: true,
            telemetry: TelemetryConfig::on(),
            service,
            ..SimConfig::default()
        },
    )
    .run(jobs)
}

#[test]
fn open_loop_same_seed_telemetry_exports_are_byte_identical() {
    let a = open_loop_run(5, 2.0);
    let b = open_loop_run(5, 2.0);
    assert_eq!(digest(&a), digest(&b), "metrics digests diverged");
    assert_eq!(
        a.telemetry.to_jsonl(false),
        b.telemetry.to_jsonl(false),
        "JSONL telemetry exports diverged"
    );
    assert_eq!(
        a.telemetry.to_chrome_trace(),
        b.telemetry.to_chrome_trace(),
        "chrome-trace exports diverged"
    );
    assert_eq!(
        a.telemetry.to_prometheus(false),
        b.telemetry.to_prometheus(false),
        "prometheus exports diverged"
    );
}

#[test]
fn backpressure_engages_at_double_saturation() {
    let report = open_loop_run(5, 2.0);
    let m = &report.metrics;
    assert!(
        m.jobs_deferred > 0,
        "2x saturation must defer arrivals (backpressure)"
    );
    assert!(m.jobs_shed > 0, "2x saturation must shed arrivals");
    // Conservation: every arrival is admitted, shed, or still queued.
    let backlog = 60 - m.jobs_admitted - m.jobs_shed;
    assert!(
        m.jobs_admitted + m.jobs_shed <= 60,
        "admitted {} + shed {} exceed arrivals",
        m.jobs_admitted,
        m.jobs_shed
    );
    // Shed jobs carry typed outcomes and trace events.
    let shed_outcomes = report
        .outcomes
        .values()
        .filter(|o| matches!(o, JobOutcome::Shed { .. }))
        .count() as u64;
    assert_eq!(shed_outcomes, m.jobs_shed, "every shed job has an outcome");
    let shed_traces = report
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Shed { .. }))
        .count() as u64;
    assert_eq!(shed_traces, m.jobs_shed, "every shed job is traced");
    // Shed jobs never enter class totals.
    assert_eq!(
        (m.accepted_slo_total + m.nores_slo_total + m.be_total) as u64 + m.jobs_shed + backlog,
        60,
        "class totals + shed + leftover backlog must cover all arrivals"
    );
}

#[test]
fn moderate_load_sheds_nothing() {
    // At the calibrated rate with the same bounded queues, the admission
    // layer keeps up: shedding should not engage.
    let report = open_loop_run(5, 0.5);
    assert_eq!(report.metrics.jobs_shed, 0, "0.5x saturation must not shed");
    assert_eq!(report.metrics.intake_overflows, 0);
    // The horizon may cut the stretched-out arrival tail while some jobs
    // are still queued; everything that arrived in time was admitted.
    assert!(
        report.metrics.jobs_admitted >= 50,
        "admission kept up at moderate load (admitted {})",
        report.metrics.jobs_admitted
    );
}
